/**
 * @file
 * Delay-on-Miss (Sakalis et al., ISCA'19) — paper §2.2.
 *
 * Speculative loads that hit in the L1 execute and forward their
 * results, but the replacement-state update is deferred until the load
 * becomes non-speculative. Speculative L1 misses are delayed outright
 * and re-executed at the safe point.
 *
 * Two shadow variants (§3.3.1):
 *  - non-TSO: a load is safe once all older branches have resolved and
 *    older memory addresses are known — multiple unprotected loads can
 *    be in flight concurrently (vulnerable to VD-VD reordering).
 *  - TSO: loads must additionally wait for older loads to complete,
 *    so at most one unprotected load executes at a time.
 *
 * DoM does not protect the I-cache (§3.3.1, Table 1: vulnerable to
 * G^I_RS via VI-AD).
 *
 * Invariant: no speculative load ever changes cache state — hits defer
 * their replacement update and misses do not execute — until the load
 * reaches the scheme's safe point (non-TSO: older branches resolved
 * and older memory addresses known; TSO: additionally older loads
 * complete).
 */

#ifndef SPECINT_SPEC_DOM_HH
#define SPECINT_SPEC_DOM_HH

#include "spec/scheme.hh"

namespace specint
{

class DomScheme : public Scheme
{
  public:
    explicit DomScheme(bool tso) : tso_(tso) {}

    std::string name() const override
    {
        return tso_ ? "DoM (TSO)" : "DoM (non-TSO)";
    }
    SafePoint safePoint() const override
    {
        return tso_ ? SafePoint::TSO : SafePoint::BranchesResolved;
    }
    SpecLoadPolicy specLoadPolicy() const override
    {
        return SpecLoadPolicy::DelayOnMiss;
    }
    SpecCoherencePolicy specCoherencePolicy() const override
    {
        // DoM's principle extended to stores: no speculative request
        // — RFO included — leaves the core, so a squashed store never
        // invalidated anyone.
        return SpecCoherencePolicy::DeferAll;
    }
    bool trainsPrefetcher() const override
    {
        // Speculative misses never issue; the prefetcher only ever
        // sees the architectural stream.
        return false;
    }

  private:
    bool tso_;
};

} // namespace specint

#endif // SPECINT_SPEC_DOM_HH
