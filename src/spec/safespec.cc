#include "spec/safespec.hh"

// SafeSpecScheme is header-only; anchored here.
