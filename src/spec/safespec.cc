/**
 * @file
 * SafeSpec implementation: invisible requests for data and
 * instruction fetches with exposure at the WFB or WFC safe point.
 */

#include "spec/safespec.hh"

// SafeSpecScheme is header-only; anchored here.
