/**
 * @file
 * InvisiSpec (Yan et al., MICRO'18) — paper §2.2.
 *
 * Speculative loads issue *invisible* requests: data is brought to the
 * core (into a speculative buffer) without changing cache state at any
 * level. When the load becomes safe, an "exposure" access makes the
 * fill visible. Invisible L1 misses still allocate MSHRs — the hook
 * the G^D_MSHR gadget exploits.
 *
 * Modes (§5.2 terminology):
 *  - Spectre: safe when all older branches have resolved.
 *  - Futuristic: safe only at the ROB head (any older instruction
 *    could squash).
 *
 * InvisiSpec does not protect instruction fetches (Table 1).
 *
 * Invariant: a speculative load changes no cache state at any level —
 * its data arrives via an invisible request — and its one visible
 * (exposure) access happens only once the load is safe (Spectre:
 * older branches resolved; Futuristic: load at ROB head). MSHR
 * occupancy is NOT part of the invariant, which is the leak.
 */

#ifndef SPECINT_SPEC_INVISISPEC_HH
#define SPECINT_SPEC_INVISISPEC_HH

#include "spec/scheme.hh"

namespace specint
{

class InvisiSpecScheme : public Scheme
{
  public:
    explicit InvisiSpecScheme(bool futuristic) : futuristic_(futuristic)
    {}

    std::string name() const override
    {
        return futuristic_ ? "InvisiSpec (Futuristic)"
                           : "InvisiSpec (Spectre)";
    }
    SafePoint safePoint() const override
    {
        return futuristic_ ? SafePoint::RobHead
                           : SafePoint::BranchesResolved;
    }
    SpecLoadPolicy specLoadPolicy() const override
    {
        return SpecLoadPolicy::InvisibleRequest;
    }
    SpecCoherencePolicy specCoherencePolicy() const override
    {
        // InvisiSpec defers the requester's own upgrade, but the RFO's
        // invalidations still go out when the store issues — exactly
        // the "request vs state" gap the paper identifies.
        return SpecCoherencePolicy::DeferUpgrade;
    }
    bool trainsPrefetcher() const override
    {
        // The invisible request still leaves the core; the prefetcher
        // below L1 observes and is trained by it.
        return true;
    }

  private:
    bool futuristic_;
};

} // namespace specint

#endif // SPECINT_SPEC_INVISISPEC_HH
