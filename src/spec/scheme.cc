/**
 * @file
 * Scheme base class plus the SchemeKind enumerations
 * (allSchemes/attackedSchemes) and the makeScheme factory the benches
 * and matrix evaluator instantiate defenses through.
 */

#include "spec/scheme.hh"

#include "sim/log.hh"
#include "spec/advanced.hh"
#include "spec/conditional.hh"
#include "spec/dom.hh"
#include "spec/fence_defense.hh"
#include "spec/invisispec.hh"
#include "spec/muontrap.hh"
#include "spec/safespec.hh"
#include "spec/unsafe.hh"

namespace specint
{

Scheme::~Scheme() = default;

std::vector<SchemeKind>
attackedSchemes()
{
    return {
        SchemeKind::DomNonTso,
        SchemeKind::DomTso,
        SchemeKind::InvisiSpecSpectre,
        SchemeKind::InvisiSpecFuturistic,
        SchemeKind::SafeSpecWfb,
        SchemeKind::SafeSpecWfc,
        SchemeKind::MuonTrap,
        SchemeKind::ConditionalSpec,
    };
}

std::vector<SchemeKind>
allSchemes()
{
    std::vector<SchemeKind> out = {SchemeKind::Unsafe};
    for (SchemeKind k : attackedSchemes())
        out.push_back(k);
    out.push_back(SchemeKind::FenceSpectre);
    out.push_back(SchemeKind::FenceFuturistic);
    out.push_back(SchemeKind::AdvancedDefense);
    return out;
}

SchemePtr
makeScheme(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Unsafe:
        return std::make_unique<UnsafeScheme>();
      case SchemeKind::DomNonTso:
        return std::make_unique<DomScheme>(false);
      case SchemeKind::DomTso:
        return std::make_unique<DomScheme>(true);
      case SchemeKind::InvisiSpecSpectre:
        return std::make_unique<InvisiSpecScheme>(false);
      case SchemeKind::InvisiSpecFuturistic:
        return std::make_unique<InvisiSpecScheme>(true);
      case SchemeKind::SafeSpecWfb:
        return std::make_unique<SafeSpecScheme>(false);
      case SchemeKind::SafeSpecWfc:
        return std::make_unique<SafeSpecScheme>(true);
      case SchemeKind::MuonTrap:
        return std::make_unique<MuonTrapScheme>();
      case SchemeKind::ConditionalSpec:
        return std::make_unique<ConditionalSpecScheme>();
      case SchemeKind::FenceSpectre:
        return std::make_unique<FenceDefenseScheme>(false);
      case SchemeKind::FenceFuturistic:
        return std::make_unique<FenceDefenseScheme>(true);
      case SchemeKind::AdvancedDefense:
        return std::make_unique<AdvancedDefenseScheme>();
    }
    panic("makeScheme: unknown SchemeKind");
}

std::string
schemeName(SchemeKind kind)
{
    return makeScheme(kind)->name();
}

} // namespace specint
