#include "spec/dom.hh"

// DomScheme is header-only; anchored here.
