/**
 * @file
 * Delay-on-Miss implementation: hit-with-deferred-touch /
 * delayed-miss load policy under the non-TSO and TSO safe points.
 */

#include "spec/dom.hh"

// DomScheme is header-only; anchored here.
