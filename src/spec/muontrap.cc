/**
 * @file
 * MuonTrap implementation: the core-private filter cache with
 * commit-time visibility, squash invalidation, and instruction-side
 * filtering.
 */

#include "spec/muontrap.hh"

#include <algorithm>

namespace specint
{

bool
MuonTrapScheme::filterProbe(Addr line) const
{
    return std::any_of(filter_.begin(), filter_.end(),
                       [line](const FilterLine &f) {
                           return f.line == line;
                       });
}

void
MuonTrapScheme::filterFill(Addr line, SeqNum seq)
{
    if (filterProbe(line))
        return;
    if (filter_.size() >= filterLines_)
        filter_.pop_front();
    filter_.push_back({line, seq});
}

void
MuonTrapScheme::filterSquashYoungerThan(SeqNum bound)
{
    filter_.erase(std::remove_if(filter_.begin(), filter_.end(),
                                 [bound](const FilterLine &f) {
                                     return f.seq > bound;
                                 }),
                  filter_.end());
}

} // namespace specint
