/**
 * @file
 * The paper's sketched advanced defense (§5.4), layered on top of
 * Delay-on-Miss cache protection:
 *
 *  Rule 1 — *no early release*: a speculative instruction holds its
 *  hardware resources (RS entry; modelled via holdRsUntilRetire) until
 *  it is non-speculative or squashed, making occupancy duration
 *  operand-independent.
 *
 *  Rule 2 — *never delay an older instruction*: age-priority issue
 *  with squashable non-pipelined EUs (older ready instructions preempt
 *  younger speculative occupants) and speculative-MSHR preemption.
 *
 * Together these close the interference channels (gadget can no longer
 * delay the target) while DoM still blocks direct cache-state changes.
 *
 * Invariant: the issue/completion timing of a bound-to-retire
 * instruction is independent of any younger speculative instruction —
 * speculative resource occupancy is operand-independent (Rule 1) and
 * always preemptible by older work (Rule 2) — while the DoM layer
 * keeps speculative loads from changing cache state before their safe
 * point.
 */

#ifndef SPECINT_SPEC_ADVANCED_HH
#define SPECINT_SPEC_ADVANCED_HH

#include "spec/scheme.hh"

namespace specint
{

class AdvancedDefenseScheme : public Scheme
{
  public:
    /** Individual rules can be disabled for the ablation bench. */
    struct Rules
    {
        bool holdResources = true;  ///< rule 1
        bool agePriority = true;    ///< rule 2 (EUs)
        bool mshrPreemption = true; ///< rule 2 (MSHRs)
    };

    AdvancedDefenseScheme() : AdvancedDefenseScheme({true, true, true})
    {}
    /** @param base cache-protection policy the scheduler rules are
     *  layered on: DelayOnMiss (DoM) by default, InvisibleRequest to
     *  model the rules on an InvisiSpec-style substrate (whose
     *  speculative misses occupy MSHRs and so exercise rule 2b). */
    explicit AdvancedDefenseScheme(
        Rules rules, SpecLoadPolicy base = SpecLoadPolicy::DelayOnMiss)
        : rules_(rules), base_(base)
    {}

    std::string name() const override
    {
        return base_ == SpecLoadPolicy::DelayOnMiss
                   ? "Advanced (DoM+prio)"
                   : "Advanced (IS+prio)";
    }
    SafePoint safePoint() const override
    {
        return SafePoint::BranchesResolved;
    }
    SpecLoadPolicy specLoadPolicy() const override { return base_; }
    SchedFlags schedFlags() const override
    {
        SchedFlags f;
        f.strictAgePriority = rules_.agePriority;
        f.holdRsUntilRetire = rules_.holdResources;
        f.preemptSpecMshr = rules_.mshrPreemption;
        return f;
    }
    SpecCoherencePolicy specCoherencePolicy() const override
    {
        // Follows the substrate: on DoM nothing speculative leaves
        // the core; on the InvisiSpec substrate the RFO request is
        // still made (and still observable).
        return base_ == SpecLoadPolicy::DelayOnMiss
                   ? SpecCoherencePolicy::DeferAll
                   : SpecCoherencePolicy::DeferUpgrade;
    }
    bool trainsPrefetcher() const override
    {
        return base_ != SpecLoadPolicy::DelayOnMiss;
    }

    const Rules &rules() const { return rules_; }

  private:
    Rules rules_;
    SpecLoadPolicy base_ = SpecLoadPolicy::DelayOnMiss;
};

} // namespace specint

#endif // SPECINT_SPEC_ADVANCED_HH
