/**
 * @file
 * Baseline: no protection. Speculative loads execute visibly, exactly
 * like a conventional OoO processor — the configuration classic
 * Spectre v1 leaks on.
 */

#ifndef SPECINT_SPEC_UNSAFE_HH
#define SPECINT_SPEC_UNSAFE_HH

#include "spec/scheme.hh"

namespace specint
{

class UnsafeScheme : public Scheme
{
  public:
    std::string name() const override { return "Unsafe"; }
    SafePoint safePoint() const override { return SafePoint::Always; }
    SpecLoadPolicy specLoadPolicy() const override
    {
        return SpecLoadPolicy::Visible;
    }
    SpecCoherencePolicy specCoherencePolicy() const override
    {
        // Conventional core: stores upgrade to M the moment they
        // issue, speculative or not.
        return SpecCoherencePolicy::EagerUpgrade;
    }
    bool trainsPrefetcher() const override { return true; }
};

} // namespace specint

#endif // SPECINT_SPEC_UNSAFE_HH
