/**
 * @file
 * Speculation-safety scheme interface.
 *
 * Every defense the paper discusses — the invisible speculation
 * schemes it attacks (§2.2) and the schemes it proposes (§5) — is a
 * Scheme. The core consults the scheme at three points:
 *
 *  1. When a speculative (unsafe) load is ready to issue: the scheme's
 *     SpecLoadPolicy decides whether it executes visibly, invisibly,
 *     only-on-L1-hit (Delay-on-Miss), or not at all.
 *  2. When any instruction is considered for issue: mayIssue() lets
 *     fence-style defenses serialise the pipeline.
 *  3. In the scheduler, via SchedFlags: the advanced defense's
 *     "never delay an older instruction" / "hold resources until
 *     non-speculative" rules (§5.4).
 *
 * The *safe point* tells the core when a load stops being speculative
 * under the scheme's threat model: when all older branches have
 * resolved (Spectre model), additionally when all older loads have
 * completed (TSO memory model, for DoM), or only at the ROB head
 * (Futuristic / wait-for-commit modes).
 */

#ifndef SPECINT_SPEC_SCHEME_HH
#define SPECINT_SPEC_SCHEME_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace specint
{

/** When does a load become non-speculative (safe)? */
enum class SafePoint : std::uint8_t
{
    Always,           ///< never speculative (unsafe baseline)
    BranchesResolved, ///< no older unresolved branch (Spectre model)
    TSO,              ///< branches resolved + older loads completed
    RobHead,          ///< oldest non-retired instruction (Futuristic)
};

/** What does an *unsafe* load do when it is ready to issue? */
enum class SpecLoadPolicy : std::uint8_t
{
    Visible,         ///< execute normally (no protection)
    DelayOnMiss,     ///< L1 hit: serve w/ deferred repl. update;
                     ///< L1 miss: wait until safe, then re-execute
    InvisibleRequest,///< issue invisible request now (uses an MSHR on
                     ///< L1 miss); visible exposure access when safe
    InvisibleFilter, ///< invisible request + core-private filter cache
                     ///< (MuonTrap); exposure when safe
    DelayAlways,     ///< wait until safe (maximally conservative)
};

/**
 * How a scheme treats the coherence transition of a *speculative*
 * store (its read-for-ownership / upgrade request) at issue time.
 * Only consulted when the hierarchy's coherence model is enabled.
 *
 * The distinction is the paper's argument applied to coherence:
 * deferring the *upgrade* (the requester's own M state) does not
 * undo the *request* — the invalidations it sent to remote sharers
 * happened the moment it was issued, and a squash cannot recall them.
 */
enum class SpecCoherencePolicy : std::uint8_t
{
    /** Full RFO at issue: invalidate remote sharers and take Modified
     *  ownership immediately (conventional core). */
    EagerUpgrade,
    /** InvisiSpec-style: the requester's own upgrade waits for the
     *  safe point, but the invalidation request still goes out — the
     *  side effect attack/coherence_probe.hh times. */
    DeferUpgrade,
    /** No coherence request leaves the core until the store is safe
     *  (DoM philosophy: speculative side effects stay core-local). */
    DeferAll,
};

/** Scheduler-rule flags implementing the §5.4 advanced defense. */
struct SchedFlags
{
    /** Rule 2: an older ready instruction preempts a younger
     *  speculative instruction occupying a non-pipelined EU. */
    bool strictAgePriority = false;
    /** Rule 1: RS entries are released at retire, not at issue. */
    bool holdRsUntilRetire = false;
    /** Rule 2 applied to MSHRs: an older load may preempt the
     *  youngest speculative MSHR when the file is full. */
    bool preemptSpecMshr = false;
};

/** Issue-time context handed to mayIssue(). */
struct IssueContext
{
    bool olderUnresolvedBranch = false;
    bool olderIncompleteLoad = false;
    /** The candidate instruction is a load/store/branch? */
    bool isLoad = false;
    bool isBranch = false;
};

/**
 * A speculation-safety scheme (defense).
 */
class Scheme
{
  public:
    virtual ~Scheme();

    virtual std::string name() const = 0;

    /** Safe point for loads under this scheme's threat model. */
    virtual SafePoint safePoint() const = 0;

    /** Policy for unsafe loads. */
    virtual SpecLoadPolicy specLoadPolicy() const = 0;

    /** Does the scheme make speculative I-fetches invisible too?
     *  True for SafeSpec (shadow I-cache) and MuonTrap (instruction
     *  filter cache); false for InvisiSpec and DoM (§3.3.1). */
    virtual bool protectsIFetch() const { return false; }

    /** Issue gate: may this instruction issue now? (fence defenses) */
    virtual bool mayIssue(const IssueContext &) const { return true; }

    /** Speculative-store coherence policy (see SpecCoherencePolicy);
     *  the conventional core upgrades eagerly. */
    virtual SpecCoherencePolicy specCoherencePolicy() const
    {
        return SpecCoherencePolicy::EagerUpgrade;
    }

    /** Do this scheme's *speculative* load requests train the
     *  hardware prefetcher? True for any scheme whose speculative
     *  requests leave the core (the prefetcher observes the miss
     *  stream below L1 regardless of how the fill is hidden); false
     *  for delay-based schemes whose speculative misses never issue. */
    virtual bool trainsPrefetcher() const { return true; }

    /** Scheduler rules (advanced defense). */
    virtual SchedFlags schedFlags() const { return {}; }

    /** @name MuonTrap-style filter cache hooks (default: absent). */
    /// @{
    virtual bool filterProbe(Addr) const { return false; }
    virtual void filterFill(Addr, SeqNum) {}
    virtual void filterSquashYoungerThan(SeqNum) {}
    /// @}

    /** Clear any per-run state (filter cache contents etc.). */
    virtual void reset() {}
};

using SchemePtr = std::unique_ptr<Scheme>;

/** Identifiers for all schemes, used by experiment sweeps. */
enum class SchemeKind : std::uint8_t
{
    Unsafe,
    DomNonTso,          ///< Delay-on-Miss, branch shadows only
    DomTso,             ///< Delay-on-Miss, TSO shadows
    InvisiSpecSpectre,
    InvisiSpecFuturistic,
    SafeSpecWfb,        ///< wait-for-branch
    SafeSpecWfc,        ///< wait-for-commit
    MuonTrap,
    ConditionalSpec,
    FenceSpectre,       ///< basic defense, Spectre model (§5.2)
    FenceFuturistic,    ///< basic defense, Futuristic model (§5.2)
    AdvancedDefense,    ///< §5.4 rules layered on DoM
};

/** All invisible-speculation schemes the paper attacks (Table 1). */
std::vector<SchemeKind> attackedSchemes();

/** All schemes including the paper's proposed defenses. */
std::vector<SchemeKind> allSchemes();

/** Factory. */
SchemePtr makeScheme(SchemeKind kind);

/** Short display name ("InvisiSpec (Spectre)", ...). */
std::string schemeName(SchemeKind kind);

} // namespace specint

#endif // SPECINT_SPEC_SCHEME_HH
