/**
 * @file
 * SafeSpec (Khasawneh et al., DAC'19) — paper §2.2.
 *
 * Mechanically similar to InvisiSpec in this model: speculative loads
 * go to shadow structures (invisible requests) and commit their cache
 * effects when safe. SafeSpec shadows the I-cache as well, so
 * speculative instruction fetches are also invisible (it is therefore
 * *not* vulnerable to the G^I_RS/VI-AD attack — Table 1).
 *
 * Modes: wait-for-branch (WFB; safe when older branches resolved) and
 * wait-for-commit (WFC; safe at ROB head).
 *
 * Invariant: speculative loads AND speculative instruction fetches
 * change no cache state at any level until the safe point (WFB:
 * older branches resolved; WFC: ROB head), when the shadow state is
 * committed by a visible exposure access.
 */

#ifndef SPECINT_SPEC_SAFESPEC_HH
#define SPECINT_SPEC_SAFESPEC_HH

#include "spec/scheme.hh"

namespace specint
{

class SafeSpecScheme : public Scheme
{
  public:
    explicit SafeSpecScheme(bool wait_for_commit) : wfc_(wait_for_commit)
    {}

    std::string name() const override
    {
        return wfc_ ? "SafeSpec (WFC)" : "SafeSpec (WFB)";
    }
    SafePoint safePoint() const override
    {
        return wfc_ ? SafePoint::RobHead : SafePoint::BranchesResolved;
    }
    SpecLoadPolicy specLoadPolicy() const override
    {
        return SpecLoadPolicy::InvisibleRequest;
    }
    bool protectsIFetch() const override { return true; }
    SpecCoherencePolicy specCoherencePolicy() const override
    {
        // Shadow structures hide the requester's state; the RFO's
        // remote invalidations are not recalled by a squash.
        return SpecCoherencePolicy::DeferUpgrade;
    }
    bool trainsPrefetcher() const override { return true; }

  private:
    bool wfc_;
};

} // namespace specint

#endif // SPECINT_SPEC_SAFESPEC_HH
