/**
 * @file
 * MuonTrap (Ainsworth & Jones, ISCA'20) — paper §2.2.
 *
 * Speculative loads fill a small core-private *filter cache* (L0)
 * instead of the main hierarchy; on commit the line is made visible,
 * and on squash the speculatively filled lines are invalidated.
 * Speculative misses still issue memory requests (and occupy MSHRs),
 * so MuonTrap is vulnerable to G^D_MSHR (Table 1). It captures
 * speculative instruction-side state too, so the I-cache channel of
 * G^I_RS is closed.
 *
 * Invariant: speculatively fetched lines (data and instruction) live
 * only in the core-private filter cache until commit; a squash
 * invalidates them, so the shared hierarchy never observes wrong-path
 * fills. Memory-request issue (and hence MSHR occupancy) is NOT
 * covered by the invariant, which is the leak.
 */

#ifndef SPECINT_SPEC_MUONTRAP_HH
#define SPECINT_SPEC_MUONTRAP_HH

#include <deque>

#include "spec/scheme.hh"

namespace specint
{

class MuonTrapScheme : public Scheme
{
  public:
    /** @param filter_lines capacity of the L0 filter cache (lines). */
    explicit MuonTrapScheme(unsigned filter_lines = 32)
        : filterLines_(filter_lines)
    {}

    std::string name() const override { return "MuonTrap"; }
    SafePoint safePoint() const override { return SafePoint::RobHead; }
    SpecLoadPolicy specLoadPolicy() const override
    {
        return SpecLoadPolicy::InvisibleFilter;
    }
    bool protectsIFetch() const override { return true; }
    SpecCoherencePolicy specCoherencePolicy() const override
    {
        // The filter cache isolates speculative *fills*; a store's
        // ownership request still invalidates remote sharers.
        return SpecCoherencePolicy::DeferUpgrade;
    }
    bool trainsPrefetcher() const override
    {
        // Filter misses go to the memory system like any request and
        // train the prefetcher on the way.
        return true;
    }

    bool filterProbe(Addr line) const override;
    void filterFill(Addr line, SeqNum seq) override;
    void filterSquashYoungerThan(SeqNum bound) override;
    void reset() override { filter_.clear(); }

  private:
    struct FilterLine
    {
        Addr line;
        SeqNum seq;
    };

    unsigned filterLines_;
    /** FIFO-replacement fully associative filter cache. */
    std::deque<FilterLine> filter_;
};

} // namespace specint

#endif // SPECINT_SPEC_MUONTRAP_HH
