#include "spec/fence_defense.hh"

// FenceDefenseScheme is header-only; anchored here.
