/**
 * @file
 * Fence defense implementation: mayIssue() blocks issue behind
 * unresolved older branches (Spectre) or branches and incomplete loads
 * (Futuristic).
 */

#include "spec/fence_defense.hh"

// FenceDefenseScheme is header-only; anchored here.
