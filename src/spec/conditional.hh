/**
 * @file
 * Conditional Speculation (Li et al., HPCA'19) — paper §2.2.
 *
 * "Suspect" speculative loads — cache misses — are delayed; cache hits
 * proceed with their state changes deferred. We model it with DoM
 * mechanics and a commit-time (ROB head) safe point, which is the
 * classification the paper uses for it in §3.3.1: a design that
 * "unprotects a load only when it becomes the oldest load or the
 * oldest instruction in the ROB", making it immune to victim-victim
 * reordering but still exposed to the attacker-reference (VD-AD)
 * ordering attack.
 *
 * Invariant: at most one unprotected speculative load is in flight —
 * a load executes visibly only when it is the oldest instruction in
 * the ROB; younger hits proceed with deferred replacement updates and
 * younger misses wait.
 */

#ifndef SPECINT_SPEC_CONDITIONAL_HH
#define SPECINT_SPEC_CONDITIONAL_HH

#include "spec/scheme.hh"

namespace specint
{

class ConditionalSpecScheme : public Scheme
{
  public:
    std::string name() const override { return "Conditional Spec."; }
    SafePoint safePoint() const override { return SafePoint::RobHead; }
    SpecLoadPolicy specLoadPolicy() const override
    {
        return SpecLoadPolicy::DelayOnMiss;
    }
    SpecCoherencePolicy specCoherencePolicy() const override
    {
        // DoM mechanics: suspect requests stay core-local.
        return SpecCoherencePolicy::DeferAll;
    }
    bool trainsPrefetcher() const override { return false; }
};

} // namespace specint

#endif // SPECINT_SPEC_CONDITIONAL_HH
