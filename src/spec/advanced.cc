/**
 * @file
 * Advanced defense (§5.4) implementation: DoM load policy plus
 * the scheduler flags for no-early-release and never-delay-older rules;
 * rules are individually switchable for the ablation bench.
 */

#include "spec/advanced.hh"

// AdvancedDefenseScheme is header-only; anchored here.
