#include "spec/advanced.hh"

// AdvancedDefenseScheme is header-only; anchored here.
