/**
 * @file
 * InvisiSpec implementation: invisible-request load policy with
 * exposure at the Spectre or Futuristic safe point.
 */

#include "spec/invisispec.hh"

// InvisiSpecScheme is header-only; anchored here.
