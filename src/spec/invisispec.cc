#include "spec/invisispec.hh"

// InvisiSpecScheme is header-only; anchored here.
