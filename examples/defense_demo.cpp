/**
 * @file
 * The paper's defenses in action (§5): the basic fence defense and the
 * advanced (hold-resources + age-priority) design both neutralise
 * every interference gadget — at very different performance costs.
 *
 * For each defense the demo (1) re-runs all three gadgets and shows
 * the ordering/presence signal is secret-independent, (2) checks the
 * executable ideal-invisible-speculation property C(E) == C(NoSpec(E))
 * (§5.1), and (3) reports the workload-suite slowdown.
 */

#include <cstdio>

#include "attack/security.hh"
#include "attack/sender.hh"
#include "cpu/core.hh"
#include "sim/stats.hh"
#include "workload/suite.hh"

using namespace specint;

namespace
{

bool
attackBlocked(SchemeKind scheme, GadgetKind g, OrderingKind o)
{
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    Core victim(CoreConfig{}, 0, hier, mem);
    victim.setScheme(makeScheme(scheme));
    AttackerAgent attacker(hier, 1);
    TrialHarness harness(hier, mem, victim, attacker);

    SenderParams params;
    params.gadget = g;
    params.ordering = o;
    const SenderProgram sp = buildSender(params, hier);

    int sig[2];
    bool present[2];
    for (unsigned secret = 0; secret < 2; ++secret) {
        harness.prepare(sp, secret);
        const TrialResult r = harness.run(sp);
        sig[secret] = r.orderSignal();
        present[secret] = r.targetPresent;
    }
    if (o == OrderingKind::Presence)
        return present[0] == present[1];
    return !(sig[0] >= 0 && sig[1] >= 0 && sig[0] != sig[1]);
}

} // namespace

int
main()
{
    std::printf("=== Defenses vs speculative interference ===\n\n");

    const std::vector<SchemeKind> defenses = {
        SchemeKind::FenceSpectre, SchemeKind::FenceFuturistic,
        SchemeKind::AdvancedDefense};

    // 1. All gadgets blocked.
    TextTable blocked({"defense", "NPEU VD-VD", "MSHR VD-VD",
                       "G^I_RS", "ideal-invisible-spec"});
    for (SchemeKind d : defenses) {
        SenderParams p;
        p.gadget = GadgetKind::Npeu;
        p.ordering = OrderingKind::VdVd;
        const bool ideal =
            checkIdealInvisibleSpeculation(d, p, 0).holds &&
            checkIdealInvisibleSpeculation(d, p, 1).holds;
        blocked.addRow(
            {schemeName(d),
             attackBlocked(d, GadgetKind::Npeu, OrderingKind::VdVd)
                 ? "blocked" : "LEAKS",
             attackBlocked(d, GadgetKind::Mshr, OrderingKind::VdVd)
                 ? "blocked" : "LEAKS",
             attackBlocked(d, GadgetKind::Rs, OrderingKind::Presence)
                 ? "blocked" : "LEAKS",
             ideal ? "holds" : "violated"});
    }
    std::printf("%s\n", blocked.render().c_str());

    // 2. The cost (Fig. 12 in miniature).
    std::printf("workload-suite slowdown vs unsafe baseline "
                "(geomean):\n");
    const auto report = runDefenseOverhead(
        {SchemeKind::Unsafe, SchemeKind::FenceSpectre,
         SchemeKind::FenceFuturistic, SchemeKind::AdvancedDefense},
        spec2017Archetypes(3000));
    std::printf("  Fence (Spectre):     %.2fx\n", report.geomean[1]);
    std::printf("  Fence (Futuristic):  %.2fx\n", report.geomean[2]);
    std::printf("  Advanced (DoM+prio): %.2fx\n", report.geomean[3]);
    std::printf("\ntakeaway (paper §5): the simple fence achieves "
                "ideal invisible speculation at a dramatic cost; the "
                "advanced design blocks the interference channels far "
                "more cheaply.\n");
    return 0;
}
