/**
 * @file
 * The paper's I-Cache PoC (§4.3), end to end: the G^I_RS gadget's
 * dependent ADDs congest the reservation stations when the transmitter
 * load misses, back-throttling the frontend so a wrong-path I-line is
 * never fetched; when the transmitter hits, the frontend reaches and
 * fetches it — a persistent, secret-dependent I-cache/LLC footprint
 * read out cross-core with Flush+Reload.
 */

#include <cstdio>
#include <string>

#include "attack/receiver.hh"
#include "attack/sender.hh"
#include "cpu/core.hh"

using namespace specint;

int
main()
{
    const std::string message = "RS";

    std::printf("=== I-Cache speculative interference PoC "
                "(G^I_RS, Flush+Reload receiver) ===\n\n");
    std::printf("victim protected by: InvisiSpec (Spectre)\n");
    std::printf("leaking %zu bits: \"%s\"\n\n", message.size() * 8,
                message.c_str());

    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    Core victim(CoreConfig{}, 0, hier, mem);
    victim.setScheme(makeScheme(SchemeKind::InvisiSpecSpectre));
    AttackerAgent attacker(hier, 1);
    TrialHarness harness(hier, mem, victim, attacker);

    SenderParams params;
    params.gadget = GadgetKind::Rs;
    params.ordering = OrderingKind::Presence;
    const SenderProgram sp = buildSender(params, hier);
    FlushReloadReceiver receiver(hier, attacker, sp.icacheTarget);

    std::printf("monitored I-line: 0x%llx (the gadget's "
                "'target_instr')\n\n",
                static_cast<unsigned long long>(sp.icacheTarget));

    std::string recovered;
    unsigned correct_bits = 0, total_bits = 0;
    for (char ch : message) {
        unsigned byte = 0;
        for (int bit = 7; bit >= 0; --bit) {
            const unsigned secret =
                (static_cast<unsigned char>(ch) >> bit) & 1;
            harness.prepare(sp, secret);
            receiver.flushTarget();
            harness.run(sp);
            // Line present => transmitter hit => secret 0 (Fig. 5).
            const unsigned guess = receiver.probePresent() ? 0 : 1;
            byte = (byte << 1) | guess;
            correct_bits += guess == secret;
            ++total_bits;
        }
        recovered += static_cast<char>(byte);
    }

    std::printf("recovered: \"%s\"  (%u/%u bits correct)\n",
                recovered.c_str(), correct_bits, total_bits);
    return recovered == message ? 0 : 1;
}
