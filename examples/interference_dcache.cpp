/**
 * @file
 * The paper's D-Cache PoC (§4.2), end to end: a speculative
 * interference attack leaking a message through Delay-on-Miss —
 * a defense that provably blocks classic Spectre (see spectre_v1).
 *
 * Per bit: the attacker primes the monitored LLC set with the QLRU
 * replacement-state receiver, mis-trains the victim's bounds check and
 * invokes the victim. Inside the victim, the mis-speculated G^D_NPEU
 * gadget reads the secret bit and — through port-0 contention on the
 * non-pipelined VSQRTPD unit — delays (or not) the *older,
 * bound-to-retire* load A relative to the reference load B. The
 * attacker probes the set and decodes the order.
 */

#include <cstdio>
#include <string>

#include "attack/receiver.hh"
#include "attack/sender.hh"
#include "cpu/core.hh"

using namespace specint;

int
main()
{
    const std::string message = "HI";

    std::printf("=== D-Cache speculative interference PoC "
                "(G^D_NPEU, VD-VD, QLRU receiver) ===\n\n");
    std::printf("victim protected by: Delay-on-Miss (non-TSO)\n");
    std::printf("leaking %zu bits: \"%s\"\n\n", message.size() * 8,
                message.c_str());

    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    Core victim(CoreConfig{}, 0, hier, mem);
    victim.setScheme(makeScheme(SchemeKind::DomNonTso));
    AttackerAgent attacker(hier, 1);
    TrialHarness harness(hier, mem, victim, attacker);

    SenderParams params;
    params.gadget = GadgetKind::Npeu;
    params.ordering = OrderingKind::VdVd;
    const SenderProgram sp = buildSender(params, hier);
    QlruReceiver receiver(hier, attacker, sp.addrA, sp.addrB);

    std::printf("monitored LLC set %u / slice %u; A=0x%llx B=0x%llx\n\n",
                receiver.setIndex(), receiver.sliceIndex(),
                static_cast<unsigned long long>(sp.addrA),
                static_cast<unsigned long long>(sp.addrB));

    std::string recovered;
    unsigned correct_bits = 0, total_bits = 0;
    for (char ch : message) {
        unsigned byte = 0;
        for (int bit = 7; bit >= 0; --bit) {
            const unsigned secret =
                (static_cast<unsigned char>(ch) >> bit) & 1;
            // Sender: one victim invocation carrying this bit.
            harness.prepare(sp, secret, nullptr,
                            /*flush_monitored=*/false);
            receiver.prime();
            harness.run(sp);
            const OrderDecode d = receiver.decode();
            const unsigned guess = d == OrderDecode::BA ? 1 : 0;
            byte = (byte << 1) | guess;
            correct_bits += guess == secret;
            ++total_bits;
        }
        recovered += static_cast<char>(byte);
    }

    std::printf("recovered: \"%s\"  (%u/%u bits correct)\n",
                recovered.c_str(), correct_bits, total_bits);
    const bool ok = recovered == message;
    std::printf("\n%s\n",
                ok ? "Delay-on-Miss blocked Spectre, but speculative "
                     "interference leaked right through it."
                   : "bit errors occurred");
    return ok ? 0 : 1;
}
