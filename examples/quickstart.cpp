/**
 * @file
 * Quickstart: build a tiny program, run it on the out-of-order core
 * under a speculation-safety scheme, and inspect the results.
 *
 * This walks through the three core abstractions of the library:
 *   1. Program  — a static code image built with a fluent API;
 *   2. Hierarchy/Core — the multi-core cache hierarchy and OoO core;
 *   3. Scheme   — the pluggable speculation defense.
 */

#include <cstdio>

#include "cpu/core.hh"
#include "memory/hierarchy.hh"
#include "spec/scheme.hh"

using namespace specint;

int
main()
{
    // A shared memory system with two cores' worth of private caches
    // and a sliced, inclusive LLC (i7-7700-like geometry).
    Hierarchy hier(HierarchyConfig::kabyLake());
    MainMemory mem;

    // Victim data: a little array at 0x10000.
    for (unsigned i = 0; i < 8; ++i)
        mem.write(0x10000 + 8 * i, 100 + i);

    // A program: sum the array with a counter loop, then a dependent
    // long-latency op.
    Program prog;
    prog.movi(1, 0);           // r1 = i
    prog.movi(2, 8);           // r2 = bound
    prog.movi(3, 0);           // r3 = sum
    const unsigned top = prog.load(4, 1, 0x10000, 8, "elem");
    prog.alu(3, 3, 4);         // sum += elem
    prog.alu(1, 1, kNoReg, 1); // i++
    prog.branch(BranchCond::LT, 1, 2, top, "loop");
    prog.sqrt(5, 3, "final");  // non-pipelined FP op on the sum
    prog.halt();

    std::printf("Program:\n%s\n", prog.listing().c_str());

    // Run it under Delay-on-Miss.
    Core core(CoreConfig{}, /*id=*/0, hier, mem);
    core.setScheme(makeScheme(SchemeKind::DomNonTso));
    const CoreStats stats = core.run(prog);

    std::printf("Finished: %s in %llu cycles\n",
                stats.finished ? "yes" : "no",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("  retired=%llu issued=%llu branches=%llu "
                "mispredicts=%llu squashes=%llu\n",
                static_cast<unsigned long long>(stats.retired),
                static_cast<unsigned long long>(stats.issued),
                static_cast<unsigned long long>(stats.branches),
                static_cast<unsigned long long>(stats.mispredicts),
                static_cast<unsigned long long>(stats.squashes));
    std::printf("  loads=%llu (L1 hits %llu)\n",
                static_cast<unsigned long long>(stats.loads),
                static_cast<unsigned long long>(stats.loadL1Hits));
    std::printf("sum = %llu (expect 828)\n",
                static_cast<unsigned long long>(core.archReg(3)));

    // Labeled instructions carry retire-time timing records.
    if (const InstTraceEntry *e = core.traceEntry("final")) {
        std::printf("'final' sqrt: issued @%llu, completed @%llu\n",
                    static_cast<unsigned long long>(e->issuedAt),
                    static_cast<unsigned long long>(e->completeAt));
    }
    return core.archReg(3) == 828 ? 0 : 1;
}
