/**
 * @file
 * Classic Spectre v1 — the attack invisible speculation was built to
 * stop. A mis-trained bounds check lets a transient load read a
 * secret byte and transmit it through a secret-indexed cache fill; a
 * cross-core Flush+Reload receiver recovers it. The demo runs the
 * same victim under the unsafe baseline (leaks every byte) and under
 * every invisible-speculation scheme (recovers nothing) — setting the
 * stage for the speculative interference attacks that break those
 * schemes anyway (see interference_dcache / interference_icache).
 */

#include <cstdio>
#include <string>

#include "attack/attacker.hh"
#include "cpu/core.hh"
#include "spec/scheme.hh"

using namespace specint;

namespace
{

constexpr Addr kSecretBase = 0x5000;   // victim secret array
constexpr Addr kBoundChase = 0x6000;   // slow-resolving bound
constexpr Addr kProbeBase = 0x700000;  // transmission array (256 lines)

struct SpectreVictim
{
    Program prog;
    unsigned branchPc;

    explicit SpectreVictim(unsigned idx)
    {
        prog.movi(1, idx);            // out-of-bounds index
        prog.load(2, kNoReg, kBoundChase); // N via pointer chase
        prog.load(2, 2, 0);
        branchPc = prog.branch(BranchCond::LT, 1, 2, 0);
        prog.halt();
        const unsigned wrong =
            prog.load(3, kNoReg,
                      static_cast<std::int64_t>(kSecretBase + 8 * idx));
        prog.load(4, 3, static_cast<std::int64_t>(kProbeBase), 64);
        prog.halt();
        prog.setBranchTarget(branchPc, wrong);
    }
};

/** Leak one byte; returns the recovered value or -1. */
int
leakByte(SchemeKind scheme, Hierarchy &hier, MainMemory &mem,
         unsigned idx)
{
    Core core(CoreConfig{}, 0, hier, mem);
    core.setScheme(makeScheme(scheme));
    AttackerAgent attacker(hier, 1);

    SpectreVictim victim(idx);

    // Attacker primes: flush the probe array and the bound chase.
    for (unsigned v = 0; v < 256; ++v)
        attacker.flush(kProbeBase + 64 * v);
    hier.flushLine(kBoundChase);
    hier.flushLine(0x6100);
    // The secret line itself is warm (the victim uses it legitimately).
    hier.access(0, kSecretBase + 8 * idx, AccessType::Data, 0);
    core.predictor().train(victim.branchPc, true, 4);

    core.run(victim.prog);

    // Flush+Reload probe over all 256 candidate lines.
    int recovered = -1;
    for (unsigned v = 0; v < 256; ++v) {
        if (attacker.isLlcHit(kProbeBase + 64 * v)) {
            recovered = static_cast<int>(v);
            break;
        }
    }
    return recovered;
}

} // namespace

int
main()
{
    const std::string secret = "SPECTRE!";

    std::printf("=== Spectre v1 vs invisible speculation ===\n\n");

    int rc = 0;
    for (SchemeKind scheme :
         {SchemeKind::Unsafe, SchemeKind::DomNonTso,
          SchemeKind::InvisiSpecSpectre, SchemeKind::SafeSpecWfb,
          SchemeKind::MuonTrap, SchemeKind::ConditionalSpec}) {
        Hierarchy hier(HierarchyConfig::kabyLake());
        MainMemory mem;
        mem.write(kBoundChase, 0x6100);
        mem.write(0x6100, 0); // N = 0: every index is out of bounds
        for (unsigned i = 0; i < secret.size(); ++i)
            mem.write(kSecretBase + 8 * i,
                      static_cast<unsigned char>(secret[i]));

        std::string out;
        unsigned leaked = 0;
        for (unsigned i = 0; i < secret.size(); ++i) {
            const int v = leakByte(scheme, hier, mem, i);
            out += (v > 31 && v < 127) ? static_cast<char>(v) : '.';
            leaked += v == static_cast<unsigned char>(secret[i]);
        }
        const bool is_unsafe = scheme == SchemeKind::Unsafe;
        std::printf("%-24s recovered \"%s\" (%u/%zu bytes)%s\n",
                    schemeName(scheme).c_str(), out.c_str(), leaked,
                    secret.size(),
                    is_unsafe
                        ? "  <-- baseline leaks"
                        : (leaked == 0 ? "  <-- blocked" : "  !!"));
        if (is_unsafe && leaked != secret.size())
            rc = 1;
        if (!is_unsafe && leaked != 0)
            rc = 1;
    }
    std::printf("\nInvisible speculation blocks Spectre v1 — but see "
                "the speculative interference examples for how the "
                "same schemes still leak.\n");
    return rc;
}
