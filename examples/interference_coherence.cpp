/**
 * @file
 * Coherence/prefetch interference PoC: leaking a message between two
 * physical cores through the *side effects of making a request* —
 * without the victim's fills ever being visible.
 *
 * The victim runs on core 0 of a two-core System; the attacker is an
 * ordinary program on core 1. Per bit, the victim's mis-trained branch
 * transiently runs a gadget whose request stream is secret-dependent:
 *
 *   coherence: the gadget's store targets a line the attacker holds in
 *     Shared iff secret=1. The store's read-for-ownership invalidates
 *     the attacker's copy the moment the store *issues* — before the
 *     squash, irrevocably. InvisiSpec-style schemes defer the store's
 *     own M-state upgrade but the invalidation request still goes out,
 *     so the attacker's timed reload of its copy recovers the secret.
 *
 *   prefetch: the gadget's load touches a trigger line iff secret=1.
 *     The demand request may be invisible, but it trains the core's
 *     next-line prefetcher, whose prefetch of trigger+1 is an ordinary
 *     *visible* transaction landing in an LLC set the attacker primed
 *     (Prime+Probe over the prefetch target).
 *
 * Both leak through every invisible-speculation scheme and are closed
 * by DoM-style and fence defenses, whose speculative requests never
 * leave the core — the paper's thesis, one layer below the caches.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "attack/coherence_probe.hh"

using namespace specint;

namespace
{

bool
leak(const std::string &message, SchemeKind scheme,
     CoherenceChannelKind kind)
{
    std::vector<std::uint8_t> bits;
    for (char ch : message)
        for (int b = 7; b >= 0; --b)
            bits.push_back((static_cast<unsigned char>(ch) >> b) & 1);

    CoherenceChannelConfig cfg;
    cfg.scheme = scheme;
    cfg.attack.kind = kind;
    cfg.trialsPerBit = 1;

    const CoherenceChannelResult res = runCoherenceChannel(bits, cfg);

    std::string recovered;
    if (res.channel.bitErrors == 0 && res.calibration.usable) {
        for (std::size_t i = 0; i < message.size(); ++i) {
            unsigned byte = 0;
            for (unsigned b = 0; b < 8; ++b)
                byte = (byte << 1) | bits[i * 8 + b];
            recovered += static_cast<char>(byte);
        }
    }

    std::printf("  %-24s %-10s calib %5llu vs %5llu  %s",
                schemeName(scheme).c_str(),
                coherenceChannelKindName(kind).c_str(),
                static_cast<unsigned long long>(res.calibration.score0),
                static_cast<unsigned long long>(res.calibration.score1),
                res.calibration.usable ? "open  " : "closed");
    if (res.calibration.usable) {
        std::printf("  %2u/%2u bits correct  recovered: \"%s\"",
                    res.channel.bitsSent - res.channel.bitErrors,
                    res.channel.bitsSent, recovered.c_str());
    }
    std::printf("\n");
    return res.calibration.usable && res.channel.bitErrors == 0 &&
           recovered == message;
}

} // namespace

int
main()
{
    const std::string message = "MESI";

    std::printf("Coherence-invalidation channel (speculative store "
                "RFO):\n");
    bool inv_open =
        leak(message, SchemeKind::Unsafe,
             CoherenceChannelKind::Invalidation);
    inv_open &= leak(message, SchemeKind::InvisiSpecSpectre,
                     CoherenceChannelKind::Invalidation);
    const bool inv_closed =
        !leak(message, SchemeKind::DomNonTso,
              CoherenceChannelKind::Invalidation) &&
        !leak(message, SchemeKind::FenceSpectre,
              CoherenceChannelKind::Invalidation);

    std::printf("\nPrefetcher-training channel (speculative load -> "
                "visible prefetch):\n");
    bool pf_open = leak(message, SchemeKind::SafeSpecWfb,
                        CoherenceChannelKind::PrefetchTraining);
    pf_open &= leak(message, SchemeKind::MuonTrap,
                    CoherenceChannelKind::PrefetchTraining);
    const bool pf_closed =
        !leak(message, SchemeKind::AdvancedDefense,
              CoherenceChannelKind::PrefetchTraining) &&
        !leak(message, SchemeKind::FenceFuturistic,
              CoherenceChannelKind::PrefetchTraining);

    if (inv_open && inv_closed && pf_open && pf_closed) {
        std::printf("\nBoth request-side-effect channels behave as "
                    "expected: open through invisible\nspeculation, "
                    "closed once speculative requests stay "
                    "core-local.\n");
        return 0;
    }
    std::printf("\nUnexpected channel behaviour — see rows above.\n");
    return 1;
}
