/**
 * @file
 * SMT sibling-thread interference PoC: leaking a message through
 * shared execution-port and MSHR contention, with no cache channel at
 * all.
 *
 * The victim (hardware thread 0) runs under an invisible-speculation
 * defense. Per bit, its mis-trained branch transiently runs a gadget
 * whose shared-resource footprint is secret-dependent: a VSQRTPD chain
 * that occupies the non-pipelined port-0 unit iff the transmitter load
 * hit (port channel), or M loads that occupy 1-vs-M of the shared
 * MSHRs (MSHR channel). The attacker (hardware thread 1) merely runs
 * its own instruction stream and watches, cycle by cycle, how much of
 * the shared resource its sibling is holding.
 *
 * Invisible speculation hides cache state, not execution-resource
 * usage — so the secret comes through against Delay-on-Miss and
 * InvisiSpec alike.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "attack/smt_probe.hh"

using namespace specint;

namespace
{

bool
leak(const std::string &message, SchemeKind scheme, SmtChannelKind kind)
{
    std::vector<std::uint8_t> bits;
    for (char ch : message)
        for (int b = 7; b >= 0; --b)
            bits.push_back((static_cast<unsigned char>(ch) >> b) & 1);

    SmtChannelConfig cfg;
    cfg.scheme = scheme;
    cfg.attack.kind = kind;
    cfg.trialsPerBit = 1;

    const SmtChannelResult res = runSmtContentionChannel(bits, cfg);

    std::string recovered;
    // Re-decode the message from the per-bit verdicts implied by the
    // error count is not possible; run again bit by bit for display.
    // Cheaper: rebuild from bits and error-free assumption when the
    // channel reports zero errors.
    if (res.channel.bitErrors == 0 && res.calibration.usable) {
        for (std::size_t i = 0; i < message.size(); ++i) {
            unsigned byte = 0;
            for (unsigned b = 0; b < 8; ++b)
                byte = (byte << 1) | bits[i * 8 + b];
            recovered += static_cast<char>(byte);
        }
    }

    std::printf("  %-24s %-7s calib %4llu vs %4llu  %s",
                schemeName(scheme).c_str(),
                smtChannelKindName(kind).c_str(),
                static_cast<unsigned long long>(res.calibration.score0),
                static_cast<unsigned long long>(res.calibration.score1),
                res.calibration.usable ? "open  " : "closed");
    if (res.calibration.usable) {
        std::printf("  %2u/%2u bits correct  recovered: \"%s\"",
                    res.channel.bitsSent - res.channel.bitErrors,
                    res.channel.bitsSent, recovered.c_str());
    }
    std::printf("\n");
    return res.calibration.usable && res.channel.bitErrors == 0 &&
           recovered == message;
}

} // namespace

int
main()
{
    const std::string message = "HI";

    std::printf("=== SMT sibling-thread interference PoC ===\n\n");
    std::printf("two hardware threads, one physical core; the probe\n"
                "thread watches shared port-0 / MSHR occupancy only --\n"
                "no cache channel, no prime+probe, no flush+reload.\n\n");
    std::printf("leaking %zu bits: \"%s\"\n\n", message.size() * 8,
                message.c_str());

    bool ok = true;
    ok &= leak(message, SchemeKind::Unsafe, SmtChannelKind::Port);
    ok &= leak(message, SchemeKind::DomNonTso, SmtChannelKind::Port);
    ok &= leak(message, SchemeKind::InvisiSpecSpectre,
               SmtChannelKind::Port);
    ok &= leak(message, SchemeKind::Unsafe, SmtChannelKind::Mshr);
    ok &= leak(message, SchemeKind::InvisiSpecSpectre,
               SmtChannelKind::Mshr);

    // Fence defenses keep the gadget from issuing at all: the channel
    // must report itself closed.
    std::printf("\nfence defense for contrast (expect closed):\n");
    const bool fence_open =
        leak(message, SchemeKind::FenceSpectre, SmtChannelKind::Port);

    std::printf("\n%s\n",
                ok && !fence_open
                    ? "Invisible speculation hid the cache side; the "
                      "sibling thread read the secret straight out of "
                      "the shared pipeline."
                    : "unexpected channel behaviour");
    return ok && !fence_open ? 0 : 1;
}
