/**
 * @file
 * The paper's representative end-to-end result (§4.4): "in the I-Cache
 * PoC, choosing a rate of 465 bps (0.2 error-rate), an AES-128 key can
 * be leaked in under 0.3 s with 80% accuracy."
 *
 * A 128-bit AES key is transmitted over the I-Cache channel under the
 * calibrated noise model at a low trials-per-bit setting; the demo
 * reports recovered key bits, accuracy, effective bit rate and wall
 * time at the nominal 3.6 GHz clock.
 */

#include <cstdio>

#include "attack/channel.hh"

using namespace specint;

int
main()
{
    std::printf("=== AES-128 key leak over the I-Cache channel "
                "(paper §4.4 representative result) ===\n\n");

    // The victim's AES-128 key (16 bytes).
    const unsigned char key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                   0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                   0x09, 0xcf, 0x4f, 0x3c};
    std::vector<std::uint8_t> bits;
    for (unsigned char byte : key)
        for (int b = 7; b >= 0; --b)
            bits.push_back((byte >> b) & 1);

    ChannelConfig cfg;
    cfg.scheme = SchemeKind::DomNonTso;
    cfg.trialsPerBit = 2; // high-rate / moderate-error operating point
    cfg.noise = NoiseConfig::calibrated();
    cfg.seed = 2026;

    const ChannelResult res = runICacheChannel(bits, cfg);

    const double accuracy =
        1.0 - res.errorRate(); // fraction of key bits correct
    const double bps = res.bitsPerSecond(cfg.clockGhz);
    const double seconds =
        static_cast<double>(res.totalCycles) / (cfg.clockGhz * 1e9);

    std::printf("key bits sent:      %u\n", res.bitsSent);
    std::printf("bit errors:         %u\n", res.bitErrors);
    std::printf("accuracy:           %.1f%%\n", accuracy * 100.0);
    std::printf("effective bit rate: %.0f bps\n", bps);
    std::printf("wall time @3.6GHz:  %.3f s\n", seconds);
    std::printf("\npaper's operating point: 465 bps, 0.2 error rate, "
                "AES-128 key in <0.3 s at ~80%% accuracy\n");

    const bool shape = accuracy >= 0.75 && seconds < 1.0 && bps > 100;
    std::printf("shape check (>=75%% accuracy, <1 s, >100 bps): %s\n",
                shape ? "PASS" : "FAIL");
    return shape ? 0 : 1;
}
