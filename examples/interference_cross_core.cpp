/**
 * @file
 * Cross-core interference PoC: leaking a message between two physical
 * cores through the shared last-level cache.
 *
 * The victim runs on core 0 of a two-core System; the attacker is an
 * ordinary program on core 1. Per bit, the victim's mis-trained branch
 * transiently runs a gadget whose shared-LLC footprint is secret-
 * dependent, and the attacker times its own loads:
 *
 *   occupancy: the gadget's loads go to 1-vs-M distinct uncached
 *     lines, occupying 1-vs-M of the shared LLC-to-memory MSHRs for
 *     the full memory latency. Invisible-speculation schemes make the
 *     requests *state*-invisible but still spend the bandwidth — the
 *     attacker's own misses queue behind them, so the secret comes
 *     through against InvisiSpec and friends.
 *
 *   eviction: the gadget's transmitter load fills a primed LLC set iff
 *     secret=1, evicting an attacker line (Prime+Probe). This one
 *     *is* closed by invisible speculation — the contrast that shows
 *     what "invisible" does and does not buy.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "attack/cross_core_probe.hh"

using namespace specint;

namespace
{

bool
leak(const std::string &message, SchemeKind scheme,
     CrossCoreChannelKind kind)
{
    std::vector<std::uint8_t> bits;
    for (char ch : message)
        for (int b = 7; b >= 0; --b)
            bits.push_back((static_cast<unsigned char>(ch) >> b) & 1);

    CrossCoreChannelConfig cfg;
    cfg.scheme = scheme;
    cfg.attack.kind = kind;
    cfg.trialsPerBit = 1;

    const CrossCoreChannelResult res = runCrossCoreChannel(bits, cfg);

    std::string recovered;
    if (res.channel.bitErrors == 0 && res.calibration.usable) {
        for (std::size_t i = 0; i < message.size(); ++i) {
            unsigned byte = 0;
            for (unsigned b = 0; b < 8; ++b)
                byte = (byte << 1) | bits[i * 8 + b];
            recovered += static_cast<char>(byte);
        }
    }

    std::printf("  %-24s %-10s calib %5llu vs %5llu  %s",
                schemeName(scheme).c_str(),
                crossCoreChannelKindName(kind).c_str(),
                static_cast<unsigned long long>(res.calibration.score0),
                static_cast<unsigned long long>(res.calibration.score1),
                res.calibration.usable ? "open  " : "closed");
    if (res.calibration.usable) {
        std::printf("  %2u/%2u bits correct  recovered: \"%s\"",
                    res.channel.bitsSent - res.channel.bitErrors,
                    res.channel.bitsSent, recovered.c_str());
    }
    std::printf("\n");
    return res.calibration.usable && res.channel.bitErrors == 0 &&
           recovered == message;
}

} // namespace

int
main()
{
    const std::string message = "HI";

    std::printf("=== Cross-core shared-LLC interference PoC ===\n\n");
    std::printf("two physical cores over one inclusive LLC; the probe\n"
                "core only times its own loads -- no shared pipeline,\n"
                "no sibling thread.\n\n");
    std::printf("leaking %zu bits: \"%s\"\n\n", message.size() * 8,
                message.c_str());

    bool ok = true;
    ok &= leak(message, SchemeKind::Unsafe,
               CrossCoreChannelKind::Occupancy);
    ok &= leak(message, SchemeKind::InvisiSpecSpectre,
               CrossCoreChannelKind::Occupancy);
    ok &= leak(message, SchemeKind::SafeSpecWfb,
               CrossCoreChannelKind::Occupancy);
    ok &= leak(message, SchemeKind::Unsafe,
               CrossCoreChannelKind::Eviction);

    // Invisible speculation closes the eviction channel (no cache-
    // state change), and fences close both (the gadget never issues).
    std::printf("\nclosed channels for contrast (expect closed):\n");
    bool closed_open = false;
    closed_open |= leak(message, SchemeKind::InvisiSpecSpectre,
                        CrossCoreChannelKind::Eviction);
    closed_open |= leak(message, SchemeKind::FenceSpectre,
                        CrossCoreChannelKind::Occupancy);
    closed_open |= leak(message, SchemeKind::FenceSpectre,
                        CrossCoreChannelKind::Eviction);

    std::printf("\n%s\n",
                ok && !closed_open
                    ? "Invisible speculation hid the cache state; the "
                      "sibling core read the secret out of the shared "
                      "LLC's bandwidth anyway."
                    : "unexpected channel behaviour");
    return ok && !closed_open ? 0 : 1;
}
