/**
 * @file
 * Replacement policy tests.
 *
 * The QLRU_H11_M1_R0_U0 tests validate exactly the policy semantics
 * the paper's receiver relies on (§4.2.2), including the full Fig. 8
 * state walk driven through a CacheArray.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"
#include "memory/replacement.hh"

namespace specint
{
namespace
{

Addr
lineAddrInSet(unsigned sets, unsigned set, unsigned k)
{
    // k-th distinct line mapping to `set` for a cache with `sets` sets.
    return (static_cast<Addr>(k) * sets + set) << kLineShift;
}

TEST(Qlru, InsertUsesAgeOne)
{
    QlruPolicy p;
    SetReplState s(4);
    p.onInsert(s, 2);
    EXPECT_EQ(s.age[2], 1);
}

TEST(Qlru, HitPromotionH11)
{
    QlruPolicy p;
    SetReplState s(4);
    s.age = {0, 1, 2, 3};
    for (unsigned w = 0; w < 4; ++w)
        p.onHit(s, w);
    // 0->0, 1->0, 2->1, 3->1
    EXPECT_EQ(s.age[0], 0);
    EXPECT_EQ(s.age[1], 0);
    EXPECT_EQ(s.age[2], 1);
    EXPECT_EQ(s.age[3], 1);
}

TEST(Qlru, VictimPicksLeftmostAgeThree)
{
    QlruPolicy p;
    SetReplState s(4);
    s.age = {2, 3, 1, 3};
    EXPECT_EQ(p.victim(s), 1u);
}

TEST(Qlru, VictimAgesOnDemandU0)
{
    QlruPolicy p;
    SetReplState s(4);
    s.age = {0, 1, 2, 1};
    EXPECT_EQ(p.victim(s), 2u); // ages become {1,2,3,2}
    EXPECT_EQ(s.age[0], 1);
    EXPECT_EQ(s.age[1], 2);
    EXPECT_EQ(s.age[3], 2);
}

TEST(Qlru, AgingStopsAtFirstCandidate)
{
    QlruPolicy p;
    SetReplState s(3);
    s.age = {1, 2, 0};
    p.victim(s); // one round: {2,3,1}
    EXPECT_EQ(s.age[0], 2);
    EXPECT_EQ(s.age[2], 1);
}

TEST(Qlru, VariantNames)
{
    EXPECT_EQ(QlruPolicy(QlruVariant::h11m1r0u0()).name(),
              "qlru_h11_m1_r0_u0");
    EXPECT_EQ(QlruPolicy(QlruVariant::h00m1r0u0()).name(),
              "qlru_h00_m1_r0_u0");
}

/**
 * Fig. 8 end-to-end: prime saturates EVS1 ∪ {A} at age 0; the victim's
 * access order (A-B vs B-A) decides which of A/B survives the EVS2
 * probe. 16-way set, exactly like the paper's LLC sets.
 */
class QlruFig8 : public ::testing::TestWithParam<bool>
{
  protected:
    static constexpr unsigned kSets = 8;
    static constexpr unsigned kWays = 16;

    CacheGeometry geo()
    {
        return {"llc", kSets, kWays, ReplKind::Qlru,
                QlruVariant::h11m1r0u0()};
    }

    void access(CacheArray &c, Addr a)
    {
        if (!c.touch(a))
            c.fill(a);
    }
};

TEST_P(QlruFig8, SecondAccessedLineSurvivesProbe)
{
    const bool order_ab = GetParam();
    CacheArray cache(geo());

    const unsigned set = 3;
    const Addr A = lineAddrInSet(kSets, set, 0);
    const Addr B = lineAddrInSet(kSets, set, 1);
    std::vector<Addr> evs1, evs2;
    for (unsigned k = 0; k < kWays - 1; ++k) {
        evs1.push_back(lineAddrInSet(kSets, set, 2 + k));
        evs2.push_back(lineAddrInSet(kSets, set, 2 + kWays - 1 + k));
    }

    // Prime: EVS1 ∪ {A} saturated at age 0.
    for (int round = 0; round < 4; ++round) {
        for (Addr ev : evs1)
            access(cache, ev);
        access(cache, A);
    }
    for (const auto &w : cache.snapshotSet(set)) {
        ASSERT_TRUE(w.valid);
        ASSERT_EQ(w.age, 0);
    }

    // Victim.
    if (order_ab) {
        access(cache, A);
        access(cache, B);
    } else {
        access(cache, B);
        access(cache, A);
    }

    // Probe.
    for (Addr ev : evs2)
        access(cache, ev);

    if (order_ab) {
        EXPECT_FALSE(cache.contains(A));
        EXPECT_TRUE(cache.contains(B));
    } else {
        EXPECT_TRUE(cache.contains(A));
        EXPECT_FALSE(cache.contains(B));
    }
}

INSTANTIATE_TEST_SUITE_P(BothOrders, QlruFig8, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "AB" : "BA";
                         });

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy p;
    SetReplState s(4);
    for (unsigned w = 0; w < 4; ++w)
        p.onInsert(s, w);
    p.onHit(s, 0);
    EXPECT_EQ(p.victim(s), 1u);
}

TEST(Srrip, InsertAtTwoHitToZero)
{
    SrripPolicy p;
    SetReplState s(4);
    p.onInsert(s, 1);
    EXPECT_EQ(s.age[1], 2);
    p.onHit(s, 1);
    EXPECT_EQ(s.age[1], 0);
}

TEST(Nru, VictimIsFirstNotRecentlyUsed)
{
    NruPolicy p;
    SetReplState s(4);
    for (unsigned w = 0; w < 4; ++w)
        p.onInsert(s, w); // all use-bit 0
    // No NRU candidate: all bits flip to 1, way 0 chosen.
    EXPECT_EQ(p.victim(s), 0u);
    p.onHit(s, 0);
    EXPECT_EQ(p.victim(s), 1u);
}

TEST(TreePlru, VictimAvoidsMostRecent)
{
    TreePlruPolicy p;
    SetReplState s(4);
    for (unsigned w = 0; w < 4; ++w)
        p.onInsert(s, w);
    // Last touch was way 3: the victim must not be way 3.
    EXPECT_NE(p.victim(s), 3u);
}

/**
 * Property: the paper's order-to-state conversion (§3.3) requires a
 * non-commutative policy. Check which policies distinguish A-B from
 * B-A with the receiver's prime/probe protocol.
 */
class OrderSensitivity
    : public ::testing::TestWithParam<ReplKind>
{};

TEST_P(OrderSensitivity, DistinguishesOrderIffOrderSensitive)
{
    const ReplKind kind = GetParam();
    const unsigned sets = 4, ways = 8;
    auto run = [&](bool ab) {
        CacheArray cache(
            {"c", sets, ways, kind, QlruVariant::h11m1r0u0()});
        auto access = [&](Addr a) {
            if (!cache.touch(a))
                cache.fill(a);
        };
        const Addr A = lineAddrInSet(sets, 1, 0);
        const Addr B = lineAddrInSet(sets, 1, 1);
        for (int r = 0; r < 4; ++r) {
            for (unsigned k = 0; k < ways - 1; ++k)
                access(lineAddrInSet(sets, 1, 2 + k));
            access(A);
        }
        if (ab) {
            access(A);
            access(B);
        } else {
            access(B);
            access(A);
        }
        for (unsigned k = 0; k < ways - 1; ++k)
            access(lineAddrInSet(sets, 1, 2 + ways - 1 + k));
        return std::make_pair(cache.contains(A), cache.contains(B));
    };
    const auto ab = run(true);
    const auto ba = run(false);
    if (kind == ReplKind::Qlru || kind == ReplKind::Lru) {
        // Strongly order-sensitive: outcomes differ.
        EXPECT_NE(ab, ba);
    }
    // Random and the others may or may not distinguish; no assertion.
}

INSTANTIATE_TEST_SUITE_P(
    Policies, OrderSensitivity,
    ::testing::Values(ReplKind::Qlru, ReplKind::Lru, ReplKind::TreePlru,
                      ReplKind::Nru, ReplKind::Srrip, ReplKind::Random),
    [](const auto &info) { return replKindName(info.param); });

} // namespace
} // namespace specint
