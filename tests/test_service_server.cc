/**
 * @file
 * End-to-end tests of the sweep service (src/sim/service/server.*):
 * the forked-worker server must produce row-for-row identical results
 * to an in-process serial run — cold, warm (all cache hits), and
 * in-process --jobs 4 — on real registered scenarios; an injected
 * worker crash must fail exactly one point and still complete the
 * job; SIGTERM must shut the server down gracefully with exit code
 * 128+15.
 *
 * Each test forks a child that runs runServer() on a scratch socket
 * (the same code path `specsim_serve` executes), then drives it with
 * the production client API.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "scenarios/scenarios.hh"
#include "sim/experiment/registry.hh"
#include "sim/experiment/report.hh"
#include "sim/experiment/runner.hh"
#include "sim/service/client.hh"
#include "sim/service/fleet.hh"
#include "sim/service/server.hh"
#include "sim/service/wire.hh"

using namespace specint;
using namespace specint::experiment;
using namespace specint::service;

namespace fs = std::filesystem;

namespace
{

/** Scratch directory removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        static int n = 0;
        path = fs::temp_directory_path() /
               ("specsim_serve_test_" + std::to_string(::getpid()) +
                "_" + std::to_string(n++));
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/** A runServer() instance forked into a child process. */
class ServerProcess
{
  public:
    explicit ServerProcess(ServeConfig config)
        : config_(std::move(config))
    {
        pid_ = ::fork();
        if (pid_ == 0) {
            const int code =
                runServer(scenarios::all(), config_);
            ::_exit(code);
        }
    }

    ~ServerProcess()
    {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            int status = 0;
            ::waitpid(pid_, &status, 0);
        }
    }

    bool forked() const { return pid_ > 0; }

    /** Wait (bounded) until a connect() on the socket succeeds. */
    bool waitReady() const
    {
        for (int i = 0; i < 500; ++i) {
            const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd < 0)
                return false;
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                          config_.socketPath.c_str());
            const bool ok =
                ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0;
            ::close(fd);
            if (ok)
                return true;
            ::usleep(10 * 1000);
        }
        return false;
    }

    /** SIGTERM the server and return its wait status. */
    int terminate()
    {
        ::kill(pid_, SIGTERM);
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
        return status;
    }

    /** SIGKILL the server (simulated endpoint death). */
    void kill9()
    {
        if (pid_ <= 0)
            return;
        ::kill(pid_, SIGKILL);
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
    }

  private:
    ServeConfig config_;
    pid_t pid_ = -1;
};

/** Poll the daemon's --port-file and return "127.0.0.1:PORT". */
std::string
waitTcpEndpoint(const std::string &port_file)
{
    for (int i = 0; i < 500; ++i) {
        std::ifstream in(port_file);
        unsigned port = 0;
        if (in && (in >> port) && port != 0)
            return "127.0.0.1:" + std::to_string(port);
        ::usleep(10 * 1000);
    }
    return "";
}

RunOptions
defaultOptions(const Scenario &sc)
{
    RunOptions opt;
    opt.trials = sc.defaultTrials;
    opt.seed = sc.defaultSeed;
    for (const ExtraFlag &f : sc.extraFlags)
        opt.extra[f.name] = f.defaultValue;
    return opt;
}

Report
runLocal(const Scenario &sc, const RunOptions &opt, unsigned jobs)
{
    return ExperimentRunner(jobs).run(sc, opt);
}

/** Row-for-row equality across every emitter-visible field. */
void
expectReportsEqual(const Report &a, const Report &b)
{
    ASSERT_EQ(a.points.size(), b.points.size());
    EXPECT_EQ(a.renderCsv(), b.renderCsv());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(encodeRows(a.points[i].rows).dump(),
                  encodeRows(b.points[i].rows).dump())
            << "point " << i;
        EXPECT_EQ(a.points[i].legacy, b.points[i].legacy)
            << "point " << i;
    }
}

} // namespace

// --------------------------------------------------------------------------
// Equivalence: serial == jobs 4 == cold serve == warm serve
// --------------------------------------------------------------------------

class ServeEquivalence : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ServeEquivalence, ColdAndCachedServeMatchSerialAndJobs4)
{
    const Scenario *sc = scenarios::all().find(GetParam());
    ASSERT_NE(sc, nullptr);
    const RunOptions opt = defaultOptions(*sc);

    const Report serial = runLocal(*sc, opt, 1);
    const Report jobs4 = runLocal(*sc, opt, 4);
    expectReportsEqual(jobs4, serial);

    TempDir tmp;
    ServeConfig config;
    config.socketPath = (tmp.path / "serve.sock").string();
    config.workers = 3;
    config.cacheDir = (tmp.path / "cache").string();
    ServerProcess server(config);
    ASSERT_TRUE(server.forked());
    ASSERT_TRUE(server.waitReady());

    // Cold: every point executes on a forked worker.
    Report cold;
    ClientOutcome oc1 = runJobOverSocket(config.socketPath, *sc, opt,
                                         cold);
    ASSERT_TRUE(oc1.ok) << oc1.error;
    EXPECT_EQ(oc1.failedPoints, 0u);
    EXPECT_EQ(oc1.done.hits, 0u);
    EXPECT_EQ(oc1.done.executed, serial.points.size());
    expectReportsEqual(cold, serial);

    // Warm: every point is served from the content-addressed cache.
    Report warm;
    ClientOutcome oc2 = runJobOverSocket(config.socketPath, *sc, opt,
                                         warm);
    ASSERT_TRUE(oc2.ok) << oc2.error;
    EXPECT_EQ(oc2.done.hits, serial.points.size());
    EXPECT_EQ(oc2.done.executed, 0u);
    expectReportsEqual(warm, serial);
    EXPECT_EQ(warm.cacheHits, serial.points.size());
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ServeEquivalence,
                         ::testing::Values("fig8", "ablation_rs"));

// --------------------------------------------------------------------------
// Ordered streaming
// --------------------------------------------------------------------------

TEST(ServeStreaming, PointsArriveInGridOrder)
{
    const Scenario *sc = scenarios::all().find("ablation_rs");
    ASSERT_NE(sc, nullptr);
    const RunOptions opt = defaultOptions(*sc);

    TempDir tmp;
    ServeConfig config;
    config.socketPath = (tmp.path / "serve.sock").string();
    config.workers = 4; // out-of-order completion is likely
    ServerProcess server(config);
    ASSERT_TRUE(server.forked());
    ASSERT_TRUE(server.waitReady());

    std::vector<std::size_t> order;
    Report report;
    ClientOutcome oc = runJobOverSocket(
        config.socketPath, *sc, opt, report,
        [&order](std::size_t index, const ReportPoint &) {
            order.push_back(index);
        });
    ASSERT_TRUE(oc.ok) << oc.error;
    ASSERT_EQ(order.size(), report.points.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

// --------------------------------------------------------------------------
// In-flight dedup across overlapping jobs
// --------------------------------------------------------------------------

TEST(ServeDedup, OverlappingJobsExecuteEachPointOnce)
{
    const Scenario *sc = scenarios::all().find("fig8");
    ASSERT_NE(sc, nullptr);
    const RunOptions opt = defaultOptions(*sc);
    const Report serial = runLocal(*sc, opt, 1);

    TempDir tmp;
    ServeConfig config;
    config.socketPath = (tmp.path / "serve.sock").string();
    config.workers = 2;
    config.cacheDir = (tmp.path / "cache").string();
    ServerProcess server(config);
    ASSERT_TRUE(server.forked());
    ASSERT_TRUE(server.waitReady());

    // Two identical jobs submitted concurrently. With the cache on,
    // every point is executed exactly once across BOTH jobs: a point
    // is either in flight (the second job attaches as a waiter) or
    // already resolved (the second job hits the cache). No double
    // execution is possible.
    Report r1, r2;
    ClientOutcome oc1, oc2;
    std::thread t1([&] {
        oc1 = runJobOverSocket(config.socketPath, *sc, opt, r1);
    });
    std::thread t2([&] {
        oc2 = runJobOverSocket(config.socketPath, *sc, opt, r2);
    });
    t1.join();
    t2.join();

    ASSERT_TRUE(oc1.ok) << oc1.error;
    ASSERT_TRUE(oc2.ok) << oc2.error;
    // Per-job accounting closes (a deduped in-flight delivery counts
    // as executed for every waiter, so the per-job split depends on
    // timing — only the total is invariant).
    EXPECT_EQ(oc1.done.hits + oc1.done.executed,
              serial.points.size());
    EXPECT_EQ(oc2.done.hits + oc2.done.executed,
              serial.points.size());
    EXPECT_EQ(oc1.done.failed + oc2.done.failed, 0u);
    expectReportsEqual(r1, serial);
    expectReportsEqual(r2, serial);

    // The global invariant: each point was executed (and stored)
    // exactly once across both jobs — overlapping requests shared
    // one execution via the cache or the in-flight task table.
    const int status = server.terminate(); // flushes index.json
    ASSERT_TRUE(WIFEXITED(status));
    std::ifstream in(tmp.path / "cache" / "index.json");
    ASSERT_TRUE(in.good());
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    Json index;
    ASSERT_TRUE(Json::parse(body, index)) << body;
    EXPECT_EQ(index.getU64("stores"), serial.points.size()) << body;
}

// --------------------------------------------------------------------------
// Crash isolation
// --------------------------------------------------------------------------

TEST(ServeCrashIsolation, WorkerDeathFailsOnlyThatPoint)
{
    const Scenario *sc = scenarios::all().find("ablation_rs");
    ASSERT_NE(sc, nullptr);
    const RunOptions opt = defaultOptions(*sc);
    const Report serial = runLocal(*sc, opt, 1);
    ASSERT_GE(serial.points.size(), 3u);

    TempDir tmp;
    ServeConfig config;
    config.socketPath = (tmp.path / "serve.sock").string();
    config.workers = 2;
    config.testCrashPoint = 1; // the worker assigned point 1 dies
    ServerProcess server(config);
    ASSERT_TRUE(server.forked());
    ASSERT_TRUE(server.waitReady());

    Report report;
    ClientOutcome oc = runJobOverSocket(config.socketPath, *sc, opt,
                                        report);
    ASSERT_TRUE(oc.ok) << oc.error; // the job completes
    EXPECT_EQ(oc.failedPoints, 1u);
    EXPECT_EQ(oc.done.failed, 1u);

    // Exactly the crashed point is missing; every other point is
    // bit-identical to the serial run.
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        if (i == 1) {
            EXPECT_FALSE(report.points[i].done);
            EXPECT_TRUE(report.points[i].rows.empty());
            continue;
        }
        EXPECT_TRUE(report.points[i].done) << "point " << i;
        EXPECT_EQ(encodeRows(report.points[i].rows).dump(),
                  encodeRows(serial.points[i].rows).dump())
            << "point " << i;
    }

    // The pool survived the crash: a fresh job fully succeeds
    // (crash injection only fires on the first assignment of the
    // configured index per worker generation is NOT assumed — the
    // server must keep respawning workers, so this job either
    // completes with the same single failed point or, if the point
    // is cached/deduped away, with none).
    Report again;
    ClientOutcome oc2 = runJobOverSocket(config.socketPath, *sc, opt,
                                         again);
    EXPECT_TRUE(oc2.ok) << oc2.error;
}

// --------------------------------------------------------------------------
// Graceful shutdown
// --------------------------------------------------------------------------

TEST(ServeShutdown, SigtermExitsNonzeroAndRemovesSocket)
{
    TempDir tmp;
    ServeConfig config;
    config.socketPath = (tmp.path / "serve.sock").string();
    config.workers = 2;
    ServerProcess server(config);
    ASSERT_TRUE(server.forked());
    ASSERT_TRUE(server.waitReady());

    const int status = server.terminate();
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 128 + SIGTERM);
    EXPECT_FALSE(fs::exists(config.socketPath));
}

// --------------------------------------------------------------------------
// Client error paths
// --------------------------------------------------------------------------

TEST(ServeClient, UnknownScenarioIsARejectedJob)
{
    TempDir tmp;
    ServeConfig config;
    config.socketPath = (tmp.path / "serve.sock").string();
    config.workers = 1;
    ServerProcess server(config);
    ASSERT_TRUE(server.forked());
    ASSERT_TRUE(server.waitReady());

    // A scenario object the server does not know about.
    Scenario bogus;
    bogus.name = "no_such_scenario";
    bogus.columns = {"x"};
    Report report;
    ClientOutcome oc = runJobOverSocket(
        config.socketPath, bogus, RunOptions{}, report);
    EXPECT_FALSE(oc.ok);
    EXPECT_NE(oc.error.find("no_such_scenario"), std::string::npos)
        << oc.error;
}

TEST(ServeClient, ConnectFailureIsReported)
{
    Report report;
    const Scenario *sc = scenarios::all().find("fig8");
    ASSERT_NE(sc, nullptr);
    ClientOutcome oc = runJobOverSocket(
        "/tmp/definitely_missing_specsim.sock", *sc,
        defaultOptions(*sc), report);
    EXPECT_FALSE(oc.ok);
    EXPECT_FALSE(oc.error.empty());
}

// --------------------------------------------------------------------------
// TCP transport
// --------------------------------------------------------------------------

TEST(ServeTcp, TcpServeMatchesSerial)
{
    const Scenario *sc = scenarios::all().find("fig8");
    ASSERT_NE(sc, nullptr);
    const RunOptions opt = defaultOptions(*sc);
    const Report serial = runLocal(*sc, opt, 1);

    TempDir tmp;
    ServeConfig config;
    config.tcpBind = "127.0.0.1:0"; // ephemeral port
    config.portFile = (tmp.path / "port").string();
    config.workers = 2;
    ServerProcess server(config);
    ASSERT_TRUE(server.forked());
    const std::string endpoint = waitTcpEndpoint(config.portFile);
    ASSERT_FALSE(endpoint.empty());

    Report tcp;
    ClientOutcome oc = runJobOverSocket(endpoint, *sc, opt, tcp);
    ASSERT_TRUE(oc.ok) << oc.error;
    EXPECT_EQ(oc.failedPoints, 0u);
    expectReportsEqual(tcp, serial);
}

// --------------------------------------------------------------------------
// Fleet: sharding across daemons, ordered merge, failover
// --------------------------------------------------------------------------

class FleetEquivalence : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FleetEquivalence, TwoDaemonFleetMatchesSerial)
{
    const Scenario *sc = scenarios::all().find(GetParam());
    ASSERT_NE(sc, nullptr);
    const RunOptions opt = defaultOptions(*sc);
    const Report serial = runLocal(*sc, opt, 1);

    TempDir tmp;
    ServeConfig c1, c2;
    c1.tcpBind = c2.tcpBind = "127.0.0.1:0";
    c1.portFile = (tmp.path / "port1").string();
    c2.portFile = (tmp.path / "port2").string();
    c1.workers = c2.workers = 2;
    c1.cacheDir = (tmp.path / "cache1").string();
    c2.cacheDir = (tmp.path / "cache2").string();
    ServerProcess s1(c1), s2(c2);
    ASSERT_TRUE(s1.forked() && s2.forked());
    const std::string ep1 = waitTcpEndpoint(c1.portFile);
    const std::string ep2 = waitTcpEndpoint(c2.portFile);
    ASSERT_FALSE(ep1.empty() || ep2.empty());

    std::vector<std::size_t> order;
    Report fleet;
    FleetOutcome oc = runJobOverFleet(
        {ep1, ep2}, *sc, opt, fleet,
        [&order](std::size_t index, const ReportPoint &) {
            order.push_back(index);
        });
    ASSERT_TRUE(oc.ok) << oc.error;
    EXPECT_EQ(oc.failedPoints, 0u);
    EXPECT_EQ(oc.endpointDeaths, 0u);
    EXPECT_EQ(oc.endpointsUsed, 2u);
    EXPECT_EQ(oc.done.hits + oc.done.executed,
              serial.points.size());
    expectReportsEqual(fleet, serial);

    // The merged stream is globally grid-ordered even though two
    // daemons raced on disjoint shards.
    ASSERT_EQ(order.size(), serial.points.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, FleetEquivalence,
                         ::testing::Values("fig11", "ablation_rs"));

TEST(FleetFailover, SigkillMidJobLosesNoResults)
{
    // fig11's points are heavyweight (~100ms each), so killing one
    // daemon after the first streamed point is guaranteed to strand
    // in-flight work on it — which failover must re-execute on the
    // surviving daemon.
    const Scenario *sc = scenarios::all().find("fig11");
    ASSERT_NE(sc, nullptr);
    const RunOptions opt = defaultOptions(*sc);
    const Report serial = runLocal(*sc, opt, 1);

    TempDir tmp;
    ServeConfig c1, c2;
    c1.tcpBind = c2.tcpBind = "127.0.0.1:0";
    c1.portFile = (tmp.path / "port1").string();
    c2.portFile = (tmp.path / "port2").string();
    c1.workers = c2.workers = 1;
    ServerProcess s1(c1), s2(c2);
    ASSERT_TRUE(s1.forked() && s2.forked());
    const std::string ep1 = waitTcpEndpoint(c1.portFile);
    const std::string ep2 = waitTcpEndpoint(c2.portFile);
    ASSERT_FALSE(ep1.empty() || ep2.empty());

    bool killed = false;
    Report fleet;
    FleetOutcome oc = runJobOverFleet(
        {ep1, ep2}, *sc, opt, fleet,
        [&](std::size_t, const ReportPoint &) {
            if (!killed) {
                killed = true;
                s2.kill9(); // endpoint death mid-sweep
            }
        });
    ASSERT_TRUE(killed);
    ASSERT_TRUE(oc.ok) << oc.error;
    EXPECT_EQ(oc.failedPoints, 0u);
    EXPECT_GE(oc.endpointDeaths, 1u);
    expectReportsEqual(fleet, serial);
}

TEST(FleetFailover, AllEndpointsDeadIsAnError)
{
    const Scenario *sc = scenarios::all().find("fig8");
    ASSERT_NE(sc, nullptr);
    Report report;
    FleetOutcome oc = runJobOverFleet(
        {"/tmp/missing_a.sock", "/tmp/missing_b.sock"}, *sc,
        defaultOptions(*sc), report);
    EXPECT_FALSE(oc.ok);
    EXPECT_NE(oc.error.find("no endpoint reachable"),
              std::string::npos)
        << oc.error;
}

// --------------------------------------------------------------------------
// Protocol version negotiation
// --------------------------------------------------------------------------

TEST(ServeProtocol, V1ClientGetsOneLineActionableError)
{
    TempDir tmp;
    ServeConfig config;
    config.socketPath = (tmp.path / "serve.sock").string();
    config.workers = 1;
    ServerProcess server(config);
    ASSERT_TRUE(server.forked());
    ASSERT_TRUE(server.waitReady());

    // Hand-roll what a v1 client sent: a job message with no
    // "protocol" field.
    std::string err;
    const int fd = connectEndpoint(config.socketPath, err);
    ASSERT_GE(fd, 0) << err;
    LineReader reader(fd);
    std::string line;
    ASSERT_TRUE(reader.readLine(line)); // hello
    Json v1job = Json::object();
    v1job.set("type", Json::str("job"));
    v1job.set("scenario", Json::str("fig8"));
    v1job.set("trials", Json::uinteger(1));
    v1job.set("seed", Json::uinteger(1));
    ASSERT_TRUE(writeLine(fd, v1job.dump()));

    ASSERT_TRUE(reader.readLine(line)); // the rejection, not a hang
    Json msg;
    ASSERT_TRUE(Json::parse(line, msg));
    EXPECT_EQ(msg.getStr("type"), "error");
    const std::string text = msg.getStr("message");
    EXPECT_NE(text.find("protocol mismatch"), std::string::npos)
        << text;
    EXPECT_NE(text.find("v1"), std::string::npos) << text;
    EXPECT_NE(text.find("v2"), std::string::npos) << text;
    // ...and the server closes the connection.
    EXPECT_FALSE(reader.readLine(line));
    EXPECT_TRUE(reader.eof());
    ::close(fd);
}

TEST(ServeProtocol, V2ClientRejectsV1Daemon)
{
    // Fake v1 daemon: accepts one connection and sends a v1 hello
    // (protocol 1, no min_protocol).
    TempDir tmp;
    const std::string path = (tmp.path / "v1.sock").string();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());
    const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd, 0);
    ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listen_fd, 1), 0);
    std::thread v1_daemon([listen_fd] {
        // Serve two clients: the single-socket client below, then
        // the fleet client.
        for (int c = 0; c < 2; ++c) {
            const int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0)
                return;
            Json hello = Json::object();
            hello.set("type", Json::str("hello"));
            hello.set("protocol", Json::uinteger(1));
            hello.set("workers", Json::uinteger(1));
            hello.set("fingerprint", Json::str("deadbeef"));
            writeLine(fd, hello.dump());
            // Linger until the client hangs up so its read never
            // races an early close.
            char buf[256];
            while (::read(fd, buf, sizeof(buf)) > 0) {
            }
            ::close(fd);
        }
    });

    const Scenario *sc = scenarios::all().find("fig8");
    ASSERT_NE(sc, nullptr);
    Report report;
    ClientOutcome oc =
        runJobOverSocket(path, *sc, defaultOptions(*sc), report);
    EXPECT_FALSE(oc.ok);
    EXPECT_NE(oc.error.find("protocol mismatch"), std::string::npos)
        << oc.error;
    EXPECT_NE(oc.error.find("v1"), std::string::npos) << oc.error;
    EXPECT_NE(oc.error.find("v2"), std::string::npos) << oc.error;

    // The fleet client refuses the same daemon up front.
    Report fleet_report;
    FleetOutcome foc = runJobOverFleet({path}, *sc,
                                       defaultOptions(*sc),
                                       fleet_report);
    EXPECT_FALSE(foc.ok);
    EXPECT_NE(foc.error.find("protocol mismatch"), std::string::npos)
        << foc.error;

    v1_daemon.join();
    ::close(listen_fd);
}

// --------------------------------------------------------------------------
// Revocation (the fleet's work-stealing primitive)
// --------------------------------------------------------------------------

TEST(ServeRevoke, RevokeHandsBackUnstartedTailPoints)
{
    // fig11: heavyweight points, so the revoke below is guaranteed
    // to arrive while point 0 is still executing.
    const Scenario *sc = scenarios::all().find("fig11");
    ASSERT_NE(sc, nullptr);
    const RunOptions opt = defaultOptions(*sc);
    const Report serial = runLocal(*sc, opt, 1);
    const std::size_t n = serial.points.size();
    ASSERT_GE(n, 4u);

    TempDir tmp;
    ServeConfig config;
    config.socketPath = (tmp.path / "serve.sock").string();
    config.workers = 1; // at most one point in flight
    ServerProcess server(config);
    ASSERT_TRUE(server.forked());
    ASSERT_TRUE(server.waitReady());

    std::string err;
    const int fd = connectEndpoint(config.socketPath, err);
    ASSERT_GE(fd, 0) << err;
    LineReader reader(fd);
    std::string line;
    ASSERT_TRUE(reader.readLine(line)); // hello

    const JobSpec spec = JobSpec::fromOptions(sc->name, opt);
    ASSERT_TRUE(writeLine(fd, makeJobMsg(spec).dump()));
    // With one worker, at most point 0 is in flight; everything else
    // is revocable, tail first.
    ASSERT_TRUE(writeLine(fd, makeRevokeMsg(2).dump()));

    std::vector<std::size_t> revoked;
    std::vector<std::size_t> streamed;
    DoneMsg done;
    bool got_done = false;
    while (!got_done && reader.readLine(line)) {
        Json msg;
        ASSERT_TRUE(Json::parse(line, msg)) << line;
        const std::string type = msg.getStr("type");
        if (type == "revoked") {
            ASSERT_TRUE(decodeRevokedMsg(msg, revoked));
        } else if (type == "point") {
            PointMsg point;
            ASSERT_TRUE(decodePointMsg(msg, point));
            EXPECT_FALSE(point.failed);
            streamed.push_back(point.index);
        } else if (type == "done") {
            ASSERT_TRUE(decodeDoneMsg(msg, done));
            got_done = true;
        }
    }
    ::close(fd);
    ASSERT_TRUE(got_done);

    // Exactly the grid tail came back, and those points were never
    // streamed; the rest arrived in grid order.
    ASSERT_EQ(revoked.size(), 2u);
    EXPECT_EQ(revoked[0], n - 2);
    EXPECT_EQ(revoked[1], n - 1);
    EXPECT_EQ(done.revoked, 2u);
    EXPECT_EQ(done.points, n);
    ASSERT_EQ(streamed.size(), n - 2);
    for (std::size_t i = 0; i < streamed.size(); ++i)
        EXPECT_EQ(streamed[i], i);
}

TEST(ServeRevoke, SubsetJobRunsOnlyItsPoints)
{
    const Scenario *sc = scenarios::all().find("ablation_rs");
    ASSERT_NE(sc, nullptr);
    const RunOptions opt = defaultOptions(*sc);
    const Report serial = runLocal(*sc, opt, 1);
    ASSERT_GE(serial.points.size(), 5u);

    TempDir tmp;
    ServeConfig config;
    config.socketPath = (tmp.path / "serve.sock").string();
    config.workers = 2;
    ServerProcess server(config);
    ASSERT_TRUE(server.forked());
    ASSERT_TRUE(server.waitReady());

    std::string err;
    const int fd = connectEndpoint(config.socketPath, err);
    ASSERT_GE(fd, 0) << err;
    LineReader reader(fd);
    std::string line;
    ASSERT_TRUE(reader.readLine(line)); // hello

    const JobSpec spec = JobSpec::fromOptions(sc->name, opt);
    const std::vector<std::size_t> subset = {1, 3, 4};
    ASSERT_TRUE(writeLine(fd, makeJobMsg(spec, subset).dump()));

    std::vector<std::size_t> streamed;
    DoneMsg done;
    bool got_done = false;
    while (!got_done && reader.readLine(line)) {
        Json msg;
        ASSERT_TRUE(Json::parse(line, msg)) << line;
        const std::string type = msg.getStr("type");
        if (type == "point") {
            PointMsg point;
            ASSERT_TRUE(decodePointMsg(msg, point));
            ASSERT_FALSE(point.failed) << point.error;
            streamed.push_back(point.index);
            EXPECT_EQ(encodeRows(point.rows).dump(),
                      encodeRows(serial.points[point.index].rows)
                          .dump())
                << "point " << point.index;
        } else if (type == "done") {
            ASSERT_TRUE(decodeDoneMsg(msg, done));
            got_done = true;
        }
    }
    ::close(fd);
    ASSERT_TRUE(got_done);
    EXPECT_EQ(streamed, subset); // grid order, nothing else
    EXPECT_EQ(done.points, subset.size());

    // Out-of-range subset indices are rejected with a clean error.
    const int fd2 = connectEndpoint(config.socketPath, err);
    ASSERT_GE(fd2, 0) << err;
    LineReader reader2(fd2);
    ASSERT_TRUE(reader2.readLine(line)); // hello
    ASSERT_TRUE(writeLine(
        fd2, makeJobMsg(spec, {serial.points.size() + 7}).dump()));
    ASSERT_TRUE(reader2.readLine(line));
    Json msg;
    ASSERT_TRUE(Json::parse(line, msg));
    EXPECT_EQ(msg.getStr("type"), "error");
    EXPECT_NE(msg.getStr("message").find("out of range"),
              std::string::npos)
        << msg.getStr("message");
    ::close(fd2);
}
