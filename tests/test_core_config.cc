/**
 * @file
 * CoreConfig / SmtConfig validation tests: malformed structural
 * configurations must be rejected with a clear error instead of
 * silently misbehaving.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "memory/hierarchy.hh"
#include "smt/smt_core.hh"

namespace specint
{
namespace
{

TEST(CoreConfigValidation, DefaultConfigIsValid)
{
    EXPECT_EQ(CoreConfig{}.validate(), "");
}

TEST(CoreConfigValidation, ZeroSizedStructuresAreRejected)
{
    const auto breaks = {
        std::pair<unsigned CoreConfig::*, const char *>{
            &CoreConfig::fetchWidth, "fetchWidth"},
        {&CoreConfig::decodeQueue, "decodeQueue"},
        {&CoreConfig::dispatchWidth, "dispatchWidth"},
        {&CoreConfig::issueWidth, "issueWidth"},
        {&CoreConfig::retireWidth, "retireWidth"},
        {&CoreConfig::robSize, "robSize"},
        {&CoreConfig::rsSize, "rsSize"},
        {&CoreConfig::lqSize, "lqSize"},
        {&CoreConfig::sqSize, "sqSize"},
        {&CoreConfig::mshrs, "mshrs"},
        {&CoreConfig::cdbWidth, "cdbWidth"},
    };
    for (const auto &[field, name] : breaks) {
        CoreConfig cfg;
        cfg.*field = 0;
        const std::string err = cfg.validate();
        EXPECT_NE(err, "") << name;
        EXPECT_NE(err.find(name), std::string::npos) << err;
    }
}

TEST(CoreConfigValidation, IssueWidthBeyondPortCountIsRejected)
{
    CoreConfig cfg;
    cfg.issueWidth = kNumPorts + 1;
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("issueWidth"), std::string::npos) << err;
    EXPECT_NE(err.find("port count"), std::string::npos) << err;
}

TEST(CoreConfigValidation, ZeroMaxCyclesIsRejected)
{
    CoreConfig cfg;
    cfg.maxCycles = 0;
    EXPECT_NE(cfg.validate().find("maxCycles"), std::string::npos);
}

TEST(CoreConfigValidationDeathTest, CoreConstructorFatalsOnBadConfig)
{
    CoreConfig cfg;
    cfg.robSize = 0;
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    EXPECT_EXIT(Core(cfg, 0, hier, mem),
                ::testing::ExitedWithCode(1), "CoreConfig: robSize");
}

TEST(SmtConfigValidation, DefaultsAreValid)
{
    EXPECT_EQ(validateSmtConfig(SmtConfig{}, CoreConfig{}), "");
    EXPECT_EQ(validateSmtConfig(SmtConfig::singleThread(), CoreConfig{}),
              "");
}

TEST(SmtConfigValidation, ThreadCountBoundsAreEnforced)
{
    SmtConfig smt;
    smt.numThreads = 0;
    EXPECT_NE(validateSmtConfig(smt, CoreConfig{}), "");
    smt.numThreads = kMaxSmtThreads + 1;
    EXPECT_NE(validateSmtConfig(smt, CoreConfig{}), "");
}

TEST(SmtConfigValidation, DegeneratePartitionIsRejected)
{
    // Partitioning a 1-entry structure across 2 threads would leave a
    // thread with zero entries: rejected up front.
    CoreConfig core;
    core.sqSize = 1;
    SmtConfig smt;
    smt.sqPolicy = SharingPolicy::Partitioned;
    const std::string err = validateSmtConfig(smt, core);
    EXPECT_NE(err.find("sqSize"), std::string::npos) << err;
    // The same structure competitively shared is fine.
    smt.sqPolicy = SharingPolicy::Shared;
    EXPECT_EQ(validateSmtConfig(smt, core), "");
}

TEST(SmtConfigValidationDeathTest, SmtCoreConstructorFatalsOnBadConfig)
{
    SmtConfig smt;
    smt.numThreads = 0;
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    EXPECT_EXIT(SmtCore(CoreConfig{}, smt, 0, hier, mem),
                ::testing::ExitedWithCode(1), "numThreads");
}

} // namespace
} // namespace specint
