/**
 * @file
 * Randomized differential fuzz for the stall fast-forward path.
 *
 * Each iteration derives an independent sub-seed (SplitMix64 over the
 * master seed), generates a random workload mix, and runs it twice —
 * once with the baseline per-cycle tick loop and once with
 * `CoreConfig::fastForward` — rotating through the topologies the
 * skip must compose with: a single Core, a two-thread SmtCore, and
 * 2-/4-core Systems with and without the shared-LLC contention knobs
 * (slice port busy time, finite shared MSHRs). Every cycle count,
 * per-thread stat and final architectural register must match
 * exactly; a mismatch prints the failing iteration's seed so it can
 * be replayed as a fixed-point regression.
 *
 * tests/test_golden_traces.cc pins the fixed-seed scenario points;
 * this file walks the configuration space around them.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cpu/core.hh"
#include "memory/hierarchy.hh"
#include "sim/rng.hh"
#include "smt/smt_core.hh"
#include "spec/scheme.hh"
#include "system/system.hh"
#include "workload/generator.hh"

namespace specint
{
namespace
{

#ifdef NDEBUG
constexpr unsigned kIterations = 500;
#else
constexpr unsigned kIterations = 50;
#endif

constexpr std::uint64_t kMasterSeed = 0x5eeded0ff0f0f0f0ULL;

/** SplitMix64 step: statistically independent per-iteration seeds. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr SchemeKind kSchemes[] = {
    SchemeKind::Unsafe,         SchemeKind::DomNonTso,
    SchemeKind::InvisiSpecSpectre, SchemeKind::SafeSpecWfb,
    SchemeKind::MuonTrap,       SchemeKind::AdvancedDefense,
};

WorkloadSpec
randomSpec(Rng &rng, unsigned slot)
{
    WorkloadSpec spec;
    spec.name = "ff-fuzz";
    spec.instructions = static_cast<unsigned>(rng.range(150, 450));
    spec.loadFrac = 0.15 + 0.20 * rng.uniform();
    spec.storeFrac = 0.10 * rng.uniform();
    spec.branchFrac = 0.05 + 0.12 * rng.uniform();
    spec.mulFrac = 0.06 * rng.uniform();
    spec.sqrtFrac = 0.05 * rng.uniform();
    spec.chaseFrac = 0.30 * rng.uniform();
    spec.footprintLines = static_cast<unsigned>(rng.range(32, 512));
    spec.branchTakenProb = rng.uniform();
    // Disjoint per-slot regions so multi-thread/multi-core images
    // never alias.
    spec.dataBase = 0x01000000ULL * (slot + 1);
    spec.codeBase = 0x400000ULL + 0x100000ULL * slot;
    spec.seed = rng.next();
    return spec;
}

/** Everything one run reports: compared field-by-field. */
struct RunDigest
{
    Tick cycles = 0;
    bool finished = false;
    std::vector<ThreadStats> threads;
    std::vector<std::uint64_t> regHashes;
};

std::uint64_t
hashRegs(const PipelineEngine &eng, ThreadId tid)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned r = 0; r < kNumRegs; ++r) {
        const std::uint64_t v = eng.archReg(tid, r);
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

void
expectDigestsEqual(const RunDigest &ff, const RunDigest &base,
                   const std::string &what)
{
    EXPECT_EQ(ff.cycles, base.cycles) << what;
    EXPECT_EQ(ff.finished, base.finished) << what;
    ASSERT_EQ(ff.threads.size(), base.threads.size()) << what;
    for (std::size_t i = 0; i < base.threads.size(); ++i) {
        const ThreadStats &a = ff.threads[i];
        const ThreadStats &b = base.threads[i];
        const std::string at = what + " thread " + std::to_string(i);
        EXPECT_EQ(a.cycles, b.cycles) << at;
        EXPECT_EQ(a.retired, b.retired) << at;
        EXPECT_EQ(a.issued, b.issued) << at;
        EXPECT_EQ(a.squashes, b.squashes) << at;
        EXPECT_EQ(a.branches, b.branches) << at;
        EXPECT_EQ(a.mispredicts, b.mispredicts) << at;
        EXPECT_EQ(a.loads, b.loads) << at;
        EXPECT_EQ(a.loadL1Hits, b.loadL1Hits) << at;
        EXPECT_EQ(a.finished, b.finished) << at;
        EXPECT_EQ(a.fetchGrants, b.fetchGrants) << at;
        EXPECT_EQ(a.portContendedCycles, b.portContendedCycles) << at;
        EXPECT_EQ(a.mshrContendedCycles, b.mshrContendedCycles) << at;
        EXPECT_EQ(a.rsBlockedCycles, b.rsBlockedCycles) << at;
        EXPECT_EQ(ff.regHashes[i], base.regHashes[i])
            << at << " architectural state diverged";
    }
}

/** One fuzz point: the randomized inputs for a single comparison. */
struct FuzzPoint
{
    std::uint64_t seed = 0;
    SchemeKind scheme = SchemeKind::Unsafe;
    unsigned topology = 0;   ///< 0=Core, 1=SmtCore 2T, 2/3=System 2/4c
    bool contended = false;  ///< shared-LLC port/MSHR limits on
    std::vector<GeneratedWorkload> workloads;
};

HierarchyConfig
fuzzHierConfig(const FuzzPoint &pt)
{
    HierarchyConfig hier = HierarchyConfig::small();
    if (pt.contended) {
        hier.llcPortBusy = 2;
        hier.llcMshrs = 4;
    }
    return hier;
}

RunDigest
runCore(const FuzzPoint &pt, bool fast_forward)
{
    CoreConfig cfg;
    cfg.fastForward = fast_forward;
    Hierarchy hier(fuzzHierConfig(pt));
    MainMemory mem;
    for (const auto &[a, v] : pt.workloads[0].memInit)
        mem.write(a, v);
    Core core(cfg, 0, hier, mem);
    core.setScheme(makeScheme(pt.scheme));
    const CoreStats s = core.run(pt.workloads[0].prog);

    RunDigest d;
    d.cycles = s.cycles;
    d.finished = s.finished;
    ThreadStats st;
    st.cycles = s.cycles;
    st.retired = s.retired;
    st.issued = s.issued;
    st.squashes = s.squashes;
    st.branches = s.branches;
    st.mispredicts = s.mispredicts;
    st.loads = s.loads;
    st.loadL1Hits = s.loadL1Hits;
    st.finished = s.finished;
    d.threads.push_back(st);
    d.regHashes.push_back(hashRegs(core.engine(), 0));
    return d;
}

RunDigest
runSmt(const FuzzPoint &pt, bool fast_forward)
{
    CoreConfig cfg;
    cfg.fastForward = fast_forward;
    Hierarchy hier(fuzzHierConfig(pt));
    MainMemory mem;
    for (const auto &wl : pt.workloads)
        for (const auto &[a, v] : wl.memInit)
            mem.write(a, v);
    SmtConfig smt;
    smt.numThreads = 2;
    SmtCore core(cfg, smt, 0, hier, mem);
    for (unsigned t = 0; t < 2; ++t)
        core.setScheme(t, makeScheme(pt.scheme));
    const SmtRunResult run =
        core.run({&pt.workloads[0].prog, &pt.workloads[1].prog});

    RunDigest d;
    d.cycles = run.cycles;
    d.finished = run.finished;
    d.threads = run.threads;
    for (unsigned t = 0; t < 2; ++t)
        d.regHashes.push_back(hashRegs(core.engine(), t));
    return d;
}

RunDigest
runSystem(const FuzzPoint &pt, unsigned num_cores, bool fast_forward)
{
    SystemConfig cfg;
    cfg.numCores = num_cores;
    cfg.core.fastForward = fast_forward;
    cfg.hier = fuzzHierConfig(pt);
    System sys(cfg);
    std::vector<std::vector<const Program *>> progs;
    for (unsigned c = 0; c < num_cores; ++c) {
        for (const auto &[a, v] : pt.workloads[c].memInit)
            sys.memory().write(a, v);
        progs.push_back({&pt.workloads[c].prog});
    }
    const SystemRunResult run = sys.run(progs);

    RunDigest d;
    d.cycles = run.cycles;
    d.finished = run.finished;
    for (unsigned c = 0; c < num_cores; ++c) {
        d.threads.push_back(run.cores[c].threads[0]);
        d.regHashes.push_back(hashRegs(sys.core(c), 0));
    }
    return d;
}

RunDigest
runPoint(const FuzzPoint &pt, bool fast_forward)
{
    switch (pt.topology) {
      case 0: return runCore(pt, fast_forward);
      case 1: return runSmt(pt, fast_forward);
      case 2: return runSystem(pt, 2, fast_forward);
      default: return runSystem(pt, 4, fast_forward);
    }
}

TEST(FastForwardFuzzTest, RandomProgramsMatchBaselineTickLoop)
{
    std::uint64_t state = kMasterSeed;
    for (unsigned it = 0; it < kIterations; ++it) {
        FuzzPoint pt;
        pt.seed = splitMix64(state);
        Rng rng(pt.seed);
        pt.scheme =
            kSchemes[rng.below(sizeof(kSchemes) / sizeof(kSchemes[0]))];
        pt.topology = it % 4;
        pt.contended = (it % 8) >= 4;
        const unsigned slots =
            pt.topology <= 1 ? 2u : (pt.topology == 2 ? 2u : 4u);
        for (unsigned s = 0; s < slots; ++s)
            pt.workloads.push_back(generateWorkload(randomSpec(rng, s)));

        const std::string what =
            "iteration " + std::to_string(it) + " seed 0x" +
            [](std::uint64_t v) {
                char buf[17];
                std::snprintf(buf, sizeof(buf), "%016llx",
                              static_cast<unsigned long long>(v));
                return std::string(buf);
            }(pt.seed) +
            " scheme " + schemeName(pt.scheme) + " topology " +
            std::to_string(pt.topology) +
            (pt.contended ? " contended" : "");
        SCOPED_TRACE(what);

        const RunDigest base = runPoint(pt, false);
        const RunDigest ff = runPoint(pt, true);
        expectDigestsEqual(ff, base, what);
        if (::testing::Test::HasFailure()) {
            // One replayable counterexample is worth more than 500
            // cascading reports.
            FAIL() << "first divergence at " << what;
        }
    }
}

} // namespace
} // namespace specint
