/**
 * @file
 * Tests of the experiment subsystem (src/sim/experiment/): sweep
 * expansion, registry semantics, the shared CLI layer, report
 * emitters, and — the load-bearing property — that the parallel
 * runner produces row-for-row identical results to serial execution,
 * both on a synthetic scenario and on the registered Table 1 sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "scenarios/scenarios.hh"
#include "sim/experiment/cli.hh"
#include "sim/experiment/driver.hh"
#include "sim/experiment/fixture_pool.hh"
#include "sim/experiment/registry.hh"
#include "sim/experiment/report.hh"
#include "sim/experiment/runner.hh"
#include "sim/experiment/sweep.hh"
#include "sim/experiment/value.hh"

using namespace specint;
using namespace specint::experiment;

// --------------------------------------------------------------------------
// SweepSpec
// --------------------------------------------------------------------------

TEST(SweepSpec, CartesianExpansionCounts)
{
    SweepSpec spec;
    spec.axis("a", {"1", "2", "3"}).axis("b", {"x", "y", "z", "w"});
    EXPECT_EQ(spec.size(), 12u);
    EXPECT_EQ(spec.expand().size(), 12u);

    spec.axis("c", {"p", "q"});
    EXPECT_EQ(spec.size(), 24u);
    EXPECT_EQ(spec.expand().size(), 24u);
}

TEST(SweepSpec, RowMajorOrderFirstAxisSlowest)
{
    SweepSpec spec;
    spec.axis("a", {"1", "2"}).axis("b", {"x", "y", "z"});
    const auto points = spec.expand();
    ASSERT_EQ(points.size(), 6u);
    // Last axis fastest: (1,x) (1,y) (1,z) (2,x) ...
    EXPECT_EQ(points[0].at("a"), "1");
    EXPECT_EQ(points[0].at("b"), "x");
    EXPECT_EQ(points[1].at("b"), "y");
    EXPECT_EQ(points[2].at("b"), "z");
    EXPECT_EQ(points[3].at("a"), "2");
    EXPECT_EQ(points[3].at("b"), "x");
    EXPECT_EQ(points[5].at("a"), "2");
    EXPECT_EQ(points[5].at("b"), "z");
}

TEST(SweepSpec, NoAxesIsOneTrivialPoint)
{
    SweepSpec spec;
    EXPECT_EQ(spec.size(), 1u);
    const auto points = spec.expand();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_TRUE(points[0].axisNames().empty());
}

TEST(SweepSpec, EmptyAxisThrows)
{
    SweepSpec spec;
    spec.axis("a", {});
    EXPECT_THROW(spec.expand(), std::invalid_argument);
}

TEST(SweepSpec, UnknownAxisLookupThrows)
{
    SweepSpec spec;
    spec.axis("a", {"1"});
    const auto points = spec.expand();
    EXPECT_THROW(points[0].at("nope"), std::out_of_range);
}

// --------------------------------------------------------------------------
// Seed splitting
// --------------------------------------------------------------------------

TEST(SplitSeed, DeterministicAndWellSpread)
{
    EXPECT_EQ(splitSeed(42, 0), splitSeed(42, 0));
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(splitSeed(42, i));
    EXPECT_EQ(seen.size(), 1000u);
    // Different bases give different streams.
    EXPECT_NE(splitSeed(1, 0), splitSeed(2, 0));
}

// --------------------------------------------------------------------------
// ScenarioRegistry
// --------------------------------------------------------------------------

namespace
{

Scenario
trivialScenario(const std::string &name)
{
    Scenario sc;
    sc.name = name;
    sc.columns = {"v"};
    sc.sweep = [](const RunOptions &) { return SweepSpec{}; };
    sc.run = [](const PointContext &, const RunOptions &) {
        PointResult res;
        res.rows.push_back({Value::integer(1)});
        return res;
    };
    return sc;
}

} // namespace

TEST(ScenarioRegistry, LookupFindsRegisteredScenario)
{
    ScenarioRegistry reg;
    reg.add(trivialScenario("alpha"));
    reg.add(trivialScenario("beta"));
    EXPECT_EQ(reg.size(), 2u);
    ASSERT_NE(reg.find("alpha"), nullptr);
    EXPECT_EQ(reg.find("alpha")->name, "alpha");
    EXPECT_EQ(reg.find("gamma"), nullptr);
}

TEST(ScenarioRegistry, DuplicateNameRejected)
{
    ScenarioRegistry reg;
    reg.add(trivialScenario("alpha"));
    EXPECT_THROW(reg.add(trivialScenario("alpha")),
                 std::invalid_argument);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(ScenarioRegistry, EmptyNameAndMissingRunRejected)
{
    ScenarioRegistry reg;
    EXPECT_THROW(reg.add(trivialScenario("")), std::invalid_argument);
    Scenario no_run = trivialScenario("norun");
    no_run.run = nullptr;
    EXPECT_THROW(reg.add(std::move(no_run)), std::invalid_argument);
}

// --------------------------------------------------------------------------
// CliArgs
// --------------------------------------------------------------------------

namespace
{

CliParse
parseArgs(const CliArgs &cli, std::vector<std::string> args)
{
    std::vector<char *> argv;
    static std::string prog = "prog";
    argv.push_back(prog.data());
    for (std::string &a : args)
        argv.push_back(a.data());
    return cli.parse(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(CliArgs, DefaultsApplied)
{
    const CliArgs cli("prog", 7, 1234, {{"bits", "bits", 24}});
    const CliParse p = parseArgs(cli, {});
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.options.trials, 7u);
    EXPECT_EQ(p.options.seed, 1234u);
    EXPECT_EQ(p.options.jobs, 1u);
    EXPECT_EQ(p.options.format, OutputFormat::Legacy);
    EXPECT_EQ(p.options.extraOr("bits", 0), 24u);
}

TEST(CliArgs, SharedKnobsParse)
{
    const CliArgs cli("prog", 1, 0);
    const CliParse p = parseArgs(
        cli, {"--trials", "9", "--seed", "77", "--jobs", "3", "--csv",
              "--out", "file.csv"});
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.options.trials, 9u);
    EXPECT_EQ(p.options.seed, 77u);
    EXPECT_EQ(p.options.jobs, 3u);
    EXPECT_EQ(p.options.format, OutputFormat::Csv);
    EXPECT_EQ(p.options.outPath, "file.csv");
}

TEST(CliArgs, UnknownFlagRejectedNotIgnored)
{
    // The old hand-rolled loops silently ignored typos like --cvs
    // (several benches ignored argv entirely); the shared layer must
    // reject them.
    const CliArgs cli("prog", 1, 0);
    const CliParse p = parseArgs(cli, {"--cvs"});
    EXPECT_FALSE(p.ok);
    EXPECT_NE(p.error.find("--cvs"), std::string::npos);
}

TEST(CliArgs, MalformedAndMissingValuesRejected)
{
    const CliArgs cli("prog", 1, 0, {{"bits", "bits", 24}});
    EXPECT_FALSE(parseArgs(cli, {"--trials", "abc"}).ok);
    EXPECT_FALSE(parseArgs(cli, {"--trials", "12x"}).ok);
    EXPECT_FALSE(parseArgs(cli, {"--seed"}).ok);
    EXPECT_FALSE(parseArgs(cli, {"--bits"}).ok);
    EXPECT_FALSE(parseArgs(cli, {"--trials", "0"}).ok);
}

TEST(CliArgs, ExtraFlagParsesAndJobsZeroMeansHardware)
{
    const CliArgs cli("prog", 1, 0, {{"bits", "bits", 24}});
    const CliParse p = parseArgs(cli, {"--bits", "64", "--jobs", "0"});
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.options.extraOr("bits", 0), 64u);
    // 0 passes through; the runner is the single resolution point.
    EXPECT_EQ(p.options.jobs, 0u);
    EXPECT_EQ(ExperimentRunner(0).jobs(),
              std::max(1u, std::thread::hardware_concurrency()));
}

TEST(CliArgs, HelpRequested)
{
    const CliArgs cli("prog", 1, 0);
    const CliParse p = parseArgs(cli, {"--help"});
    EXPECT_TRUE(p.ok);
    EXPECT_TRUE(p.helpRequested);
    EXPECT_NE(cli.usage().find("--trials"), std::string::npos);
}

// --------------------------------------------------------------------------
// Value / emitters
// --------------------------------------------------------------------------

TEST(Value, TextAndJsonRenderings)
{
    EXPECT_EQ(Value::str("hi").text(), "hi");
    EXPECT_EQ(Value::str("a\"b\n").json(), "\"a\\\"b\\n\"");
    EXPECT_EQ(Value::integer(-3).text(), "-3");
    EXPECT_EQ(Value::uinteger(7).json(), "7");
    EXPECT_EQ(Value::real(1.23456, 2).text(), "1.23");
    EXPECT_EQ(Value::real(2.5, 0).text(), "2");
    EXPECT_EQ(Value::boolean(true).text(), "1");
    EXPECT_EQ(Value::boolean(false).json(), "false");
    EXPECT_EQ(Value::real(1.5, 1).num(), 1.5);
}

// --------------------------------------------------------------------------
// ExperimentRunner: parallel == serial determinism
// --------------------------------------------------------------------------

namespace
{

/** Synthetic sweep whose rows depend on point coordinates, the trial
 *  seeds and --trials, with deliberately unbalanced point costs. */
Scenario
syntheticScenario(std::atomic<unsigned> *executions = nullptr)
{
    Scenario sc;
    sc.name = "synthetic";
    sc.columns = {"a", "b", "checksum"};
    sc.defaultTrials = 3;
    sc.sweep = [](const RunOptions &) {
        SweepSpec spec;
        spec.axis("a", {"0", "1", "2", "3", "4"})
            .axis("b", {"0", "1", "2", "3", "4", "5", "6", "7"});
        return spec;
    };
    sc.run = [executions](const PointContext &ctx,
                          const RunOptions &) {
        if (executions)
            executions->fetch_add(1);
        // Unbalanced busy-work so schedulers interleave differently.
        volatile std::uint64_t sink = 0;
        for (std::uint64_t i = 0;
             i < 10'000 * (1 + ctx.pointIndex % 7); ++i)
            sink = sink + i; // (compound volatile ops are deprecated)
        std::uint64_t checksum = 0;
        for (unsigned t = 0; t < ctx.trials; ++t)
            checksum ^= ctx.trialSeed(t);
        PointResult res;
        res.rows.push_back({Value::str(ctx.point.at("a")),
                            Value::str(ctx.point.at("b")),
                            Value::uinteger(checksum)});
        res.legacy = ctx.point.at("a") + ctx.point.at("b") + ";";
        return res;
    };
    return sc;
}

RunOptions
optionsWith(unsigned jobs, unsigned trials = 3,
            std::uint64_t seed = 99)
{
    RunOptions opt;
    opt.jobs = jobs;
    opt.trials = trials;
    opt.seed = seed;
    return opt;
}

} // namespace

TEST(ExperimentRunner, ParallelMatchesSerialRowForRow)
{
    const Scenario sc = syntheticScenario();
    const Report serial =
        ExperimentRunner(1).run(sc, optionsWith(1));

    for (unsigned jobs : {2u, 4u, 7u}) {
        const Report parallel =
            ExperimentRunner(jobs).run(sc, optionsWith(jobs));
        ASSERT_EQ(parallel.points.size(), serial.points.size());
        // Row-for-row identical: the emitted CSV (grid order) and the
        // per-point legacy fragments must match exactly.
        EXPECT_EQ(parallel.renderCsv(), serial.renderCsv())
            << "jobs=" << jobs;
        for (std::size_t i = 0; i < serial.points.size(); ++i)
            EXPECT_EQ(parallel.points[i].legacy,
                      serial.points[i].legacy);
    }
}

TEST(ExperimentRunner, EveryPointExecutesExactlyOnce)
{
    std::atomic<unsigned> executions{0};
    const Scenario sc = syntheticScenario(&executions);
    const Report rep = ExperimentRunner(4).run(sc, optionsWith(4));
    EXPECT_EQ(executions.load(), 40u);
    EXPECT_EQ(rep.allRows().size(), 40u);
    // Every point slot must be filled (no stolen-and-dropped tasks).
    for (const ReportPoint &p : rep.points)
        EXPECT_EQ(p.rows.size(), 1u);
}

TEST(ExperimentRunner, SeedAndTrialsChangeResults)
{
    const Scenario sc = syntheticScenario();
    const Report base = ExperimentRunner(1).run(sc, optionsWith(1));
    const Report reseeded =
        ExperimentRunner(1).run(sc, optionsWith(1, 3, 100));
    const Report more_trials =
        ExperimentRunner(1).run(sc, optionsWith(1, 5));
    EXPECT_NE(base.renderCsv(), reseeded.renderCsv());
    EXPECT_NE(base.renderCsv(), more_trials.renderCsv());
}

TEST(ExperimentRunner, PointExceptionPropagates)
{
    Scenario sc = trivialScenario("thrower");
    sc.sweep = [](const RunOptions &) {
        SweepSpec spec;
        spec.axis("i", {"0", "1", "2", "3", "4", "5", "6", "7"});
        return spec;
    };
    sc.run = [](const PointContext &ctx, const RunOptions &) {
        if (ctx.point.at("i") == "5")
            throw std::runtime_error("boom");
        return PointResult{};
    };
    RunOptions opt = optionsWith(4);
    EXPECT_THROW(ExperimentRunner(4).run(sc, opt),
                 std::runtime_error);
    EXPECT_THROW(ExperimentRunner(1).run(sc, opt),
                 std::runtime_error);
}

// --------------------------------------------------------------------------
// Registered scenarios (bench/scenarios/)
// --------------------------------------------------------------------------

TEST(RegisteredScenarios, AllBenchesRegistered)
{
    const ScenarioRegistry &reg = scenarios::all();
    for (const char *name :
         {"table1", "fig7", "fig8", "fig11", "fig12",
          "ablation_advanced", "ablation_mshr", "ablation_rs",
          "ablation_smt", "ablation_cross_core", "ablation_coherence",
          "microbench"}) {
        EXPECT_NE(reg.find(name), nullptr) << name;
    }
    EXPECT_EQ(reg.size(), 12u);
}

namespace
{

/** JSON with the run-metadata lines that legitimately differ between
 *  equivalent runs removed: host timings (wall_us / cpu_us) and the
 *  job count. Everything else must be byte-identical. */
std::string
redactTimings(const std::string &json)
{
    std::string out;
    out.reserve(json.size());
    std::size_t pos = 0;
    while (pos < json.size()) {
        std::size_t end = json.find('\n', pos);
        if (end == std::string::npos)
            end = json.size();
        const std::string line = json.substr(pos, end - pos);
        if (line.find("\"wall_us\"") == std::string::npos &&
            line.find("\"cpu_us\"") == std::string::npos &&
            line.find("\"jobs\"") == std::string::npos) {
            out += line;
            out += '\n';
        }
        pos = end + 1;
    }
    return out;
}

/** Run under an explicit fixture-reuse setting, restoring the
 *  previous one. */
Report
runWithReuse(const Scenario &sc, const RunOptions &opt, bool reuse)
{
    const bool prev = fixtureReuseEnabled();
    setFixtureReuse(reuse);
    const Report rep =
        ExperimentRunner(opt.jobs ? opt.jobs : 1).run(sc, opt);
    setFixtureReuse(prev);
    return rep;
}

} // namespace

TEST(RegisteredScenarios, Table1ParallelMatchesSerial)
{
    const Scenario *sc = scenarios::all().find("table1");
    ASSERT_NE(sc, nullptr);

    RunOptions serial_opt;
    serial_opt.jobs = 1;
    const Report serial = ExperimentRunner(1).run(*sc, serial_opt);
    EXPECT_EQ(serial.allRows().size(), 96u); // 8 cells x 12 schemes

    RunOptions par_opt;
    par_opt.jobs = 4;
    const Report parallel = ExperimentRunner(4).run(*sc, par_opt);

    EXPECT_EQ(parallel.renderCsv(), serial.renderCsv());
    EXPECT_EQ(redactTimings(parallel.renderJson()),
              redactTimings(serial.renderJson()));
}

TEST(RegisteredScenarios, Table1FixtureReuseIsByteIdentical)
{
    // The per-worker pooled fixture (attack/trial_fixture.hh) must be
    // invisible in the results: a sweep over reused fixtures emits
    // exactly the bytes a construct-per-cell sweep does, for both the
    // serial and the work-stealing parallel paths.
    const Scenario *sc = scenarios::all().find("table1");
    ASSERT_NE(sc, nullptr);

    RunOptions opt;
    opt.jobs = 1;
    const Report fresh = runWithReuse(*sc, opt, false);
    const Report reused = runWithReuse(*sc, opt, true);
    EXPECT_EQ(fresh.renderCsv(), reused.renderCsv());
    EXPECT_EQ(redactTimings(fresh.renderJson()),
              redactTimings(reused.renderJson()));

    opt.jobs = 4;
    const Report par_reused = runWithReuse(*sc, opt, true);
    EXPECT_EQ(fresh.renderCsv(), par_reused.renderCsv());
}

TEST(RegisteredScenarios, Fig11FixtureReuseIsByteIdentical)
{
    // Same property for the covert-channel scenario, which exercises
    // the pooled fixture through both channel entry points and the
    // per-run noise/seed plumbing: per-trial seeding with reuse must
    // match construct-per-trial exactly.
    const Scenario *sc = scenarios::all().find("fig11");
    ASSERT_NE(sc, nullptr);

    RunOptions opt;
    opt.jobs = 1;
    opt.trials = 6; // short message; identity, not error rates
    opt.seed = sc->defaultSeed;
    const Report fresh = runWithReuse(*sc, opt, false);
    const Report reused = runWithReuse(*sc, opt, true);
    EXPECT_EQ(fresh.renderCsv(), reused.renderCsv());
    EXPECT_EQ(redactTimings(fresh.renderJson()),
              redactTimings(reused.renderJson()));
}

TEST(RegisteredScenarios, Table1ParallelSweepIsFaster)
{
    // The whole point of the parallel runner: the table1 sweep should
    // complete measurably faster than serial when real hardware
    // parallelism exists. CPU-time accounting keeps the comparison
    // honest (wall < summed per-point CPU cost = the serial estimate).
    if (std::thread::hardware_concurrency() < 2)
        GTEST_SKIP() << "needs >= 2 hardware threads";

    const Scenario *sc = scenarios::all().find("table1");
    ASSERT_NE(sc, nullptr);
    RunOptions opt;
    opt.jobs = std::thread::hardware_concurrency();
    const Report rep = ExperimentRunner(opt.jobs).run(*sc, opt);
    EXPECT_LT(rep.wallUs, rep.cpuUs())
        << "parallel sweep no faster than its serial cost estimate";
}

TEST(RegisteredScenarios, SweepSizesMatchLegacyGrids)
{
    const ScenarioRegistry &reg = scenarios::all();
    const struct
    {
        const char *name;
        std::size_t points;
    } expected[] = {
        {"table1", 96},  {"fig7", 1},
        {"fig8", 2},     {"fig11", 10},
        {"fig12", 12},   {"ablation_advanced", 5},
        {"ablation_mshr", 7}, {"ablation_rs", 6},
        {"ablation_smt", 72}, {"ablation_cross_core", 24},
        {"microbench", 22},
    };
    for (const auto &e : expected) {
        const Scenario *sc = reg.find(e.name);
        ASSERT_NE(sc, nullptr) << e.name;
        RunOptions defaults;
        defaults.trials = sc->defaultTrials;
        defaults.seed = sc->defaultSeed;
        for (const ExtraFlag &f : sc->extraFlags)
            defaults.extra[f.name] = f.defaultValue;
        EXPECT_EQ(sc->sweep(defaults).size(), e.points) << e.name;
    }
}

TEST(RegisteredScenarios, MicrobenchSimOnlyFiltersToSimulationRows)
{
    const Scenario *sc = scenarios::all().find("microbench");
    ASSERT_NE(sc, nullptr);
    RunOptions opts;
    opts.trials = sc->defaultTrials;
    opts.extra["sim-only"] = 1;
    const SweepSpec spec = sc->sweep(opts);
    EXPECT_EQ(spec.size(), 17u); // 15 simulation + 2 trial-setup rows
    for (const SweepPoint &pt : spec.expand()) {
        const std::string &name = pt.at("bench");
        EXPECT_TRUE(name.find("Simulation") != std::string::npos ||
                    name.find("TrialSetup") != std::string::npos)
            << name;
    }
}

TEST(Report, JsonIsStructurallySound)
{
    const Scenario sc = syntheticScenario();
    const Report rep = ExperimentRunner(1).run(sc, optionsWith(1));
    const std::string json = rep.renderJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"scenario\": \"synthetic\""),
              std::string::npos);
    EXPECT_NE(json.find("\"rows\": ["), std::string::npos);
    EXPECT_NE(json.find("\"checksum\": "), std::string::npos);
    // Balanced braces/brackets (no raw strings contain them here).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(Report, WriteOutCreatesMissingParentDirectories)
{
    // --out/--metrics-out/--trace-out all route through writeOut: an
    // output path in a not-yet-existing results tree must be created,
    // not fail after the sweep already ran.
    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() /
        ("specsim_writeout_" + std::to_string(::getpid()));
    const fs::path nested = root / "a" / "b" / "out.csv";
    ASSERT_FALSE(fs::exists(root));

    EXPECT_TRUE(writeOut(nested.string(), "col\n1\n"));
    std::ifstream in(nested);
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(body, "col\n1\n");

    // A path whose "parent" is a file, not a directory, fails loudly.
    EXPECT_FALSE(
        writeOut((nested / "impossible.csv").string(), "x"));

    std::error_code ec;
    fs::remove_all(root, ec);
}
