/**
 * @file
 * Branch predictor tests, including the attacker's mis-training
 * primitive.
 */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"

namespace specint
{
namespace
{

TEST(Predictor, DefaultsToNotTaken)
{
    BranchPredictor p;
    EXPECT_FALSE(p.predict(0x10));
}

TEST(Predictor, SaturatesTowardsTaken)
{
    BranchPredictor p;
    p.update(0x10, true);
    EXPECT_FALSE(p.predict(0x10)); // weakly not-taken -> weakly taken
    p.update(0x10, true);
    EXPECT_TRUE(p.predict(0x10));
}

TEST(Predictor, TrainIsRepeatedUpdate)
{
    BranchPredictor p;
    p.train(0x20, true, 4);
    EXPECT_TRUE(p.predict(0x20));
    p.train(0x20, false, 4);
    EXPECT_FALSE(p.predict(0x20));
}

TEST(Predictor, MistrainingSurvivesOneCorrection)
{
    // 2-bit hysteresis: one not-taken outcome must not flip a strongly
    // taken-trained branch — exactly why Spectre mis-training works
    // across a victim invocation.
    BranchPredictor p;
    p.train(0x30, true, 4);
    p.update(0x30, false);
    EXPECT_TRUE(p.predict(0x30));
}

TEST(Predictor, PerPcIndependence)
{
    BranchPredictor p;
    p.train(0x40, true, 4);
    EXPECT_TRUE(p.predict(0x40));
    EXPECT_FALSE(p.predict(0x44));
}

TEST(Predictor, ResetForgets)
{
    BranchPredictor p;
    p.train(0x50, true, 4);
    p.reset();
    EXPECT_FALSE(p.predict(0x50));
}

} // namespace
} // namespace specint
