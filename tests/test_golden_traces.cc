/**
 * @file
 * Differential golden-trace harness.
 *
 * The one place where the simulator's reported numbers are pinned:
 * every registered scenario point runs at fixed seeds under each
 * engine variant — {baseline tick loop, stall fast-forward on,
 * stats-lite on, both} — and every variant must reproduce the golden
 * cycle counts, final stats, architectural register file and channel
 * verdicts exactly. The golden rows were captured from the
 * pre-unification Core pipeline (commit affb3f5) and promoted here
 * from test_smt.cc; any divergence — from the arena-backed ROB, the
 * fast-forward skip logic, stats-lite elision or a future rewrite —
 * fails loudly with the variant name.
 *
 * tests/test_fastforward_fuzz.cc complements this with randomized
 * differential coverage; this file is the fixed-seed anchor.
 */

#include <gtest/gtest.h>

#include <functional>

#include "attack/channel.hh"
#include "attack/smt_probe.hh"
#include "cpu/core.hh"
#include "memory/hierarchy.hh"
#include "smt/smt_core.hh"
#include "spec/scheme.hh"
#include "system/system.hh"
#include "workload/generator.hh"

namespace specint
{
namespace
{

WorkloadSpec
fuzzSpec(std::uint64_t seed)
{
    WorkloadSpec spec;
    spec.name = "smt-fuzz";
    spec.instructions = 1000;
    spec.loadFrac = 0.30;
    spec.storeFrac = 0.08;
    spec.branchFrac = 0.15;
    spec.mulFrac = 0.05;
    spec.sqrtFrac = 0.03;
    spec.chaseFrac = 0.25;
    spec.footprintLines = 512;
    spec.branchTakenProb = 0.35;
    spec.seed = seed;
    return spec;
}

/** The engine variants every golden point must agree across. */
struct EngineVariant
{
    const char *name;
    bool fastForward;
    bool statsLite;
};

constexpr EngineVariant kVariants[] = {
    {"baseline", false, false},
    {"fastforward", true, false},
    {"statslite", false, true},
    {"fastforward+statslite", true, true},
};

CoreConfig
variantCoreConfig(const EngineVariant &v)
{
    CoreConfig cfg;
    cfg.fastForward = v.fastForward;
    cfg.statsLite = v.statsLite;
    return cfg;
}

HierarchyConfig
variantHierConfig(const EngineVariant &v)
{
    HierarchyConfig cfg = HierarchyConfig::small();
    cfg.statsLite = v.statsLite;
    return cfg;
}

// ---------------------------------------------------------------------
// Golden rows (captured from the pre-unification pipeline)
// ---------------------------------------------------------------------

/**
 * One golden data point, captured from the independent pre-refactor
 * Core pipeline (commit affb3f5, before Core/SmtCore were folded into
 * the unified engine) running the fuzz workloads above. Any behaviour
 * change in the unified engine — via the Core façade or SmtCore with
 * one thread, under any engine variant — shows up as a
 * cycle/stat/register divergence here.
 */
struct GoldenTrace
{
    std::uint64_t seed;
    SchemeKind kind;
    Tick cycles;
    std::uint64_t retired, issued, squashes, branches, mispredicts;
    std::uint64_t loads, loadL1Hits;
    /** FNV-1a over the final architectural register file. */
    std::uint64_t regHash;
};

constexpr GoldenTrace kGoldenTraces[] = {
    {11u, SchemeKind::Unsafe, 13628, 882, 1383, 62, 122, 62, 399, 136, 0x6ad714dbbfc53ca0ULL},
    {11u, SchemeKind::DomNonTso, 22072, 882, 2858, 66, 152, 66, 1047, 67, 0x6ad714dbbfc53ca0ULL},
    {11u, SchemeKind::InvisiSpecSpectre, 14322, 882, 1745, 65, 132, 65, 492, 32, 0x6ad714dbbfc53ca0ULL},
    {11u, SchemeKind::SafeSpecWfb, 25322, 882, 1172, 61, 121, 61, 347, 23, 0x6ad714dbbfc53ca0ULL},
    {11u, SchemeKind::MuonTrap, 25334, 882, 1172, 61, 121, 61, 347, 11, 0x6ad714dbbfc53ca0ULL},
    {11u, SchemeKind::AdvancedDefense, 22079, 882, 2393, 64, 141, 64, 901, 59, 0x6ad714dbbfc53ca0ULL},
    {37u, SchemeKind::Unsafe, 14905, 888, 1417, 60, 103, 60, 420, 153, 0xea29e7580253d790ULL},
    {37u, SchemeKind::DomNonTso, 20712, 888, 3011, 61, 124, 61, 1029, 68, 0xea29e7580253d790ULL},
    {37u, SchemeKind::InvisiSpecSpectre, 16973, 888, 1955, 62, 110, 62, 581, 32, 0xea29e7580253d790ULL},
    {37u, SchemeKind::SafeSpecWfb, 25941, 888, 1207, 61, 104, 61, 352, 22, 0xea29e7580253d790ULL},
    {37u, SchemeKind::MuonTrap, 25877, 888, 1199, 61, 104, 61, 350, 6, 0xea29e7580253d790ULL},
    {37u, SchemeKind::AdvancedDefense, 20672, 888, 2670, 61, 116, 61, 925, 61, 0xea29e7580253d790ULL},
    {71u, SchemeKind::Unsafe, 12321, 881, 1348, 59, 115, 59, 319, 109, 0x642497def1f7cc6aULL},
    {71u, SchemeKind::DomNonTso, 19104, 881, 3058, 60, 142, 60, 768, 72, 0x642497def1f7cc6aULL},
    {71u, SchemeKind::InvisiSpecSpectre, 15653, 881, 1600, 62, 131, 62, 383, 32, 0x642497def1f7cc6aULL},
    {71u, SchemeKind::SafeSpecWfb, 25902, 881, 1180, 59, 116, 59, 270, 21, 0x642497def1f7cc6aULL},
    {71u, SchemeKind::MuonTrap, 25902, 881, 1180, 59, 116, 59, 270, 15, 0x642497def1f7cc6aULL},
    {71u, SchemeKind::AdvancedDefense, 19105, 881, 2740, 60, 143, 60, 730, 70, 0x642497def1f7cc6aULL},
};

std::uint64_t
fnv1aRegs(const std::function<std::uint64_t(RegId)> &reg)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned r = 0; r < kNumRegs; ++r) {
        const std::uint64_t v = reg(static_cast<RegId>(r));
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

void
expectMatchesGolden(const GoldenTrace &g, const ThreadStats &st,
                    Tick cycles, std::uint64_t reg_hash,
                    const char *variant)
{
    EXPECT_EQ(cycles, g.cycles) << schemeName(g.kind) << " " << variant;
    EXPECT_EQ(st.retired, g.retired)
        << schemeName(g.kind) << " " << variant;
    EXPECT_EQ(st.issued, g.issued) << schemeName(g.kind) << " " << variant;
    EXPECT_EQ(st.squashes, g.squashes)
        << schemeName(g.kind) << " " << variant;
    EXPECT_EQ(st.branches, g.branches)
        << schemeName(g.kind) << " " << variant;
    EXPECT_EQ(st.mispredicts, g.mispredicts)
        << schemeName(g.kind) << " " << variant;
    EXPECT_EQ(st.loads, g.loads) << schemeName(g.kind) << " " << variant;
    EXPECT_EQ(st.loadL1Hits, g.loadL1Hits)
        << schemeName(g.kind) << " " << variant;
    EXPECT_EQ(reg_hash, g.regHash)
        << schemeName(g.kind) << " " << variant
        << " architectural state diverged";
}

class GoldenTraceTest : public ::testing::TestWithParam<GoldenTrace>
{};

TEST_P(GoldenTraceTest, CoreFacadeMatchesGoldenUnderEveryVariant)
{
    const GoldenTrace &g = GetParam();
    const GeneratedWorkload wl = generateWorkload(fuzzSpec(g.seed));

    for (const EngineVariant &v : kVariants) {
        Hierarchy hier(variantHierConfig(v));
        MainMemory mem;
        for (const auto &[a, v2] : wl.memInit)
            mem.write(a, v2);
        Core core(variantCoreConfig(v), 0, hier, mem);
        core.setScheme(makeScheme(g.kind));
        const CoreStats s = core.run(wl.prog);

        ASSERT_TRUE(s.finished) << schemeName(g.kind) << " " << v.name;
        ThreadStats st;
        st.retired = s.retired;
        st.issued = s.issued;
        st.squashes = s.squashes;
        st.branches = s.branches;
        st.mispredicts = s.mispredicts;
        st.loads = s.loads;
        st.loadL1Hits = s.loadL1Hits;
        expectMatchesGolden(
            g, st, s.cycles,
            fnv1aRegs([&](RegId r) { return core.archReg(r); }), v.name);
    }
}

TEST_P(GoldenTraceTest, SingleThreadSmtCoreMatchesGoldenUnderEveryVariant)
{
    const GoldenTrace &g = GetParam();
    const GeneratedWorkload wl = generateWorkload(fuzzSpec(g.seed));

    for (const EngineVariant &v : kVariants) {
        Hierarchy hier(variantHierConfig(v));
        MainMemory mem;
        for (const auto &[a, v2] : wl.memInit)
            mem.write(a, v2);
        SmtCore smt(variantCoreConfig(v), SmtConfig::singleThread(), 0,
                    hier, mem);
        smt.setScheme(0, makeScheme(g.kind));
        const SmtRunResult run = smt.run({&wl.prog});

        ASSERT_TRUE(run.finished) << schemeName(g.kind) << " " << v.name;
        expectMatchesGolden(
            g, run.threads[0], run.cycles,
            fnv1aRegs([&](RegId r) { return smt.archReg(0, r); }),
            v.name);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSchemes, GoldenTraceTest, ::testing::ValuesIn(kGoldenTraces),
    [](const auto &info) {
        return "seed" + std::to_string(info.param.seed) + "_" +
               std::to_string(static_cast<int>(info.param.kind));
    });

// ---------------------------------------------------------------------
// Multi-core differential: fast-forward composes with the System's
// lockstep round-robin and the shared-level contention timers
// ---------------------------------------------------------------------

void
expectThreadStatsEqual(const ThreadStats &a, const ThreadStats &b,
                       const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.retired, b.retired) << what;
    EXPECT_EQ(a.issued, b.issued) << what;
    EXPECT_EQ(a.squashes, b.squashes) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.mispredicts, b.mispredicts) << what;
    EXPECT_EQ(a.loads, b.loads) << what;
    EXPECT_EQ(a.loadL1Hits, b.loadL1Hits) << what;
    EXPECT_EQ(a.finished, b.finished) << what;
    EXPECT_EQ(a.fetchGrants, b.fetchGrants) << what;
    EXPECT_EQ(a.portContendedCycles, b.portContendedCycles) << what;
    EXPECT_EQ(a.mshrContendedCycles, b.mshrContendedCycles) << what;
    EXPECT_EQ(a.rsBlockedCycles, b.rsBlockedCycles) << what;
}

WorkloadSpec
systemSpec(std::uint64_t seed, Addr data_base, Addr code_base)
{
    WorkloadSpec spec = fuzzSpec(seed);
    spec.instructions = 600;
    spec.footprintLines = 128;
    spec.dataBase = data_base;
    spec.codeBase = code_base;
    return spec;
}

// ---------------------------------------------------------------------
// Trial-reuse differential: a fixture reset with resetForRun() must be
// indistinguishable from a freshly constructed one. The sweep runner
// pools fixtures per worker thread (sim/experiment/fixture_pool.hh);
// these tests pin the reset contract against the same golden rows the
// fresh-construction tests use.
// ---------------------------------------------------------------------

TEST(ReusedFixtureGoldenTest, ReusedCoreMatchesGoldenUnderEveryVariant)
{
    for (const EngineVariant &v : kVariants) {
        // One long-lived substrate per variant, reused across all 18
        // golden points in sequence — every row must still match the
        // numbers a fresh Core produces.
        Hierarchy hier(variantHierConfig(v));
        MainMemory mem;
        Core core(variantCoreConfig(v), 0, hier, mem);
        for (const GoldenTrace &g : kGoldenTraces) {
            core.resetForRun();
            hier.reset();
            mem.clear();
            const GeneratedWorkload wl = generateWorkload(fuzzSpec(g.seed));
            for (const auto &[a, val] : wl.memInit)
                mem.write(a, val);
            core.setScheme(makeScheme(g.kind));
            const CoreStats s = core.run(wl.prog);
            ASSERT_TRUE(s.finished)
                << schemeName(g.kind) << " reused " << v.name;
            ThreadStats st;
            st.retired = s.retired;
            st.issued = s.issued;
            st.squashes = s.squashes;
            st.branches = s.branches;
            st.mispredicts = s.mispredicts;
            st.loads = s.loads;
            st.loadL1Hits = s.loadL1Hits;
            expectMatchesGolden(
                g, st, s.cycles,
                fnv1aRegs([&](RegId r) { return core.archReg(r); }),
                (std::string("reused ") + v.name).c_str());
        }
    }
}

TEST(ReusedFixtureGoldenTest, SystemResetForRunErasesAllRunHistory)
{
    const GeneratedWorkload wl0 =
        generateWorkload(systemSpec(5, 0x01000000, 0x400000));
    const GeneratedWorkload wl1 =
        generateWorkload(systemSpec(8, 0x02000000, 0x500000));

    SystemConfig cfg;
    cfg.numCores = 2;

    auto load = [](System &sys, const GeneratedWorkload &wl) {
        for (const auto &[a, val] : wl.memInit)
            sys.memory().write(a, val);
    };

    // Cold reference: a fresh System running the target workloads.
    System fresh(cfg);
    load(fresh, wl0);
    load(fresh, wl1);
    const SystemRunResult want = fresh.run({{&wl0.prog}, {&wl1.prog}});
    ASSERT_TRUE(want.finished);

    // Dirty a second System with an unrelated workload pair (different
    // seeds, footprints and address bases), then reset and rerun the
    // target pair: predictor state, cache contents, arena/slab
    // occupancy and memory must all have been restored.
    const GeneratedWorkload other0 =
        generateWorkload(systemSpec(13, 0x03000000, 0x600000));
    const GeneratedWorkload other1 =
        generateWorkload(systemSpec(21, 0x04000000, 0x700000));
    System reused(cfg);
    load(reused, other0);
    load(reused, other1);
    ASSERT_TRUE(reused.run({{&other0.prog}, {&other1.prog}}).finished);

    reused.resetForRun();
    load(reused, wl0);
    load(reused, wl1);
    const SystemRunResult got = reused.run({{&wl0.prog}, {&wl1.prog}});
    ASSERT_TRUE(got.finished);
    EXPECT_EQ(got.cycles, want.cycles);
    for (unsigned c = 0; c < 2; ++c) {
        expectThreadStatsEqual(got.cores[c].threads[0],
                               want.cores[c].threads[0],
                               "reused core " + std::to_string(c));
        EXPECT_EQ(got.cores[c].cycles, want.cores[c].cycles);
    }
}

TEST(SystemGoldenTest, FastForwardMatchesBaselineWithContentionModel)
{
    const GeneratedWorkload wl0 =
        generateWorkload(systemSpec(5, 0x01000000, 0x400000));
    const GeneratedWorkload wl1 =
        generateWorkload(systemSpec(8, 0x02000000, 0x500000));

    auto run_once = [&](const EngineVariant &v, unsigned llc_port_busy,
                        unsigned llc_mshrs) {
        SystemConfig cfg;
        cfg.numCores = 2;
        cfg.core = variantCoreConfig(v);
        cfg.hier = variantHierConfig(v);
        cfg.hier.llcPortBusy = llc_port_busy;
        cfg.hier.llcMshrs = llc_mshrs;
        System sys(cfg);
        for (const auto &[a, val] : wl0.memInit)
            sys.memory().write(a, val);
        for (const auto &[a, val] : wl1.memInit)
            sys.memory().write(a, val);
        return sys.run({{&wl0.prog}, {&wl1.prog}});
    };

    // Uncontended and contended shared level: the skip must respect
    // the slice-port and shared-MSHR busy timers in both regimes.
    for (const auto &[port_busy, mshrs] :
         {std::pair<unsigned, unsigned>{0u, 0u}, {2u, 4u}}) {
        const SystemRunResult base =
            run_once(kVariants[0], port_busy, mshrs);
        ASSERT_TRUE(base.finished);
        for (const EngineVariant &v : kVariants) {
            const SystemRunResult got = run_once(v, port_busy, mshrs);
            const std::string what =
                std::string(v.name) + " llcPortBusy=" +
                std::to_string(port_busy);
            ASSERT_TRUE(got.finished) << what;
            EXPECT_EQ(got.cycles, base.cycles) << what;
            for (unsigned c = 0; c < 2; ++c) {
                expectThreadStatsEqual(
                    got.cores[c].threads[0], base.cores[c].threads[0],
                    what + " core " + std::to_string(c));
                EXPECT_EQ(got.cores[c].cycles, base.cores[c].cycles)
                    << what;
            }
        }
    }
}

TEST(SystemGoldenTest, StatsLiteElidesTheLlcTraceOnly)
{
    const GeneratedWorkload wl =
        generateWorkload(systemSpec(5, 0x01000000, 0x400000));

    auto run_once = [&](bool stats_lite) {
        SystemConfig cfg;
        cfg.numCores = 1;
        cfg.hier.statsLite = stats_lite;
        System sys(cfg);
        for (const auto &[a, val] : wl.memInit)
            sys.memory().write(a, val);
        const SystemRunResult res = sys.run({{&wl.prog}});
        return std::make_pair(res,
                              sys.hierarchy().llcTrace().size());
    };

    const auto [base, base_trace] = run_once(false);
    const auto [lite, lite_trace] = run_once(true);
    ASSERT_TRUE(base.finished && lite.finished);
    EXPECT_EQ(lite.cycles, base.cycles);
    expectThreadStatsEqual(lite.cores[0].threads[0],
                           base.cores[0].threads[0], "statsLite hier");
    EXPECT_GT(base_trace, 0u);
    EXPECT_EQ(lite_trace, 0u);
}

// ---------------------------------------------------------------------
// Channel verdicts: the attack results are identical with fast-forward
// enabled (the engine falls back to ticking whenever a per-cycle agent
// is attached, and skips only provably dead cycles otherwise)
// ---------------------------------------------------------------------

TEST(ChannelGoldenTest, DCacheChannelVerdictUnchangedByFastForward)
{
    const auto bits = randomBits(12, 7);
    auto run_once = [&](bool ff) {
        ChannelConfig cfg;
        cfg.scheme = SchemeKind::DomNonTso;
        cfg.trialsPerBit = 1;
        cfg.noise = NoiseConfig::none();
        cfg.core.fastForward = ff;
        return runDCacheChannel(bits, cfg);
    };
    const ChannelResult base = run_once(false);
    const ChannelResult ff = run_once(true);
    EXPECT_EQ(ff.bitsSent, base.bitsSent);
    EXPECT_EQ(ff.bitErrors, base.bitErrors);
    EXPECT_EQ(ff.discardedTrials, base.discardedTrials);
    EXPECT_EQ(ff.totalCycles, base.totalCycles);
}

TEST(ChannelGoldenTest, ICacheChannelVerdictUnchangedByFastForward)
{
    const auto bits = randomBits(12, 9);
    auto run_once = [&](bool ff) {
        ChannelConfig cfg;
        cfg.scheme = SchemeKind::InvisiSpecSpectre;
        cfg.trialsPerBit = 1;
        cfg.noise = NoiseConfig::none();
        cfg.core.fastForward = ff;
        return runICacheChannel(bits, cfg);
    };
    const ChannelResult base = run_once(false);
    const ChannelResult ff = run_once(true);
    EXPECT_EQ(ff.bitsSent, base.bitsSent);
    EXPECT_EQ(ff.bitErrors, base.bitErrors);
    EXPECT_EQ(ff.discardedTrials, base.discardedTrials);
    EXPECT_EQ(ff.totalCycles, base.totalCycles);
}

TEST(ChannelGoldenTest, SmtChannelVerdictUnchangedByFastForward)
{
    const auto bits = randomBits(8, 123);
    auto run_once = [&](bool ff) {
        SmtChannelConfig cfg;
        cfg.scheme = SchemeKind::InvisiSpecSpectre;
        cfg.attack.kind = SmtChannelKind::Port;
        cfg.trialsPerBit = 1;
        cfg.core.fastForward = ff;
        return runSmtContentionChannel(bits, cfg);
    };
    const SmtChannelResult base = run_once(false);
    const SmtChannelResult ff = run_once(true);
    EXPECT_EQ(ff.calibration.usable, base.calibration.usable);
    EXPECT_EQ(ff.channel.bitsSent, base.channel.bitsSent);
    EXPECT_EQ(ff.channel.bitErrors, base.channel.bitErrors);
    EXPECT_EQ(ff.channel.totalCycles, base.channel.totalCycles);
}

// ---------------------------------------------------------------------
// Stats-lite is asserted off in every attack scenario
// ---------------------------------------------------------------------

TEST(StatsLiteDeathTest, AttackEntryPointsRejectStatsLite)
{
    const auto bits = randomBits(2, 1);

    ChannelConfig core_lite;
    core_lite.core.statsLite = true;
    EXPECT_EXIT(runDCacheChannel(bits, core_lite),
                ::testing::ExitedWithCode(1), "statsLite");

    ChannelConfig hier_lite;
    hier_lite.hier.statsLite = true;
    EXPECT_EXIT(runICacheChannel(bits, hier_lite),
                ::testing::ExitedWithCode(1), "statsLite");

    SmtChannelConfig smt_lite;
    smt_lite.core.statsLite = true;
    EXPECT_EXIT(runSmtContentionChannel(bits, smt_lite),
                ::testing::ExitedWithCode(1), "statsLite");
}

} // namespace
} // namespace specint
