/**
 * @file
 * Framing/codec hardening tests for the service wire protocol
 * (src/sim/service/wire.*):
 *
 * - LineBuffer must reassemble a message stream identically no matter
 *   how the transport fragments it — replayed here at every byte
 *   boundary (all two-chunk splits) and fully byte-by-byte.
 * - Trailing garbage must parse as a clean error, never a crash or a
 *   misframed message; an unterminated tail must stay buffered.
 * - LineReader must tolerate arbitrarily fragmented writes on a real
 *   fd.
 * - The protocol-v2 message codecs (job envelope + subset, revoke /
 *   revoked, done.revoked) must round-trip, and a v1 job message
 *   (no "protocol" field) must decode as protocol 1.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "sim/service/wire.hh"

using namespace specint;
using namespace specint::service;

namespace
{

/** A representative stream: one of every client/server message type,
 *  with every cell kind on the wire. */
std::vector<std::string>
sampleMessages()
{
    JobSpec spec;
    spec.scenario = "fig11";
    spec.trials = 3;
    spec.seed = 0xfeedface;
    spec.extra["rob"] = 224;

    PointMsg point;
    point.index = 4;
    point.durationUs = 1234;
    experiment::Row row;
    row.push_back(experiment::Value::str("label"));
    row.push_back(experiment::Value::integer(-7));
    row.push_back(experiment::Value::uinteger(1ull << 40));
    row.push_back(experiment::Value::real(0.1 + 0.2, 3));
    row.push_back(experiment::Value::boolean(true));
    point.rows.push_back(row);
    point.legacy = "legacy text with \"quotes\" and \\slashes\\";

    PointMsg failed;
    failed.index = 5;
    failed.failed = true;
    failed.error = "worker crashed (killed by signal)";

    DoneMsg done;
    done.points = 10;
    done.hits = 2;
    done.executed = 5;
    done.failed = 1;
    done.revoked = 2;
    done.wallUs = 987654;

    return {
        makeHelloMsg(8, "0123456789abcdef").dump(),
        makeJobMsg(spec).dump(),
        makeJobMsg(spec, {0, 3, 7}).dump(),
        makeExecMsg(spec, 3).dump(),
        makePointMsg(point).dump(),
        makePointMsg(failed).dump(),
        makeRevokeMsg(4).dump(),
        makeRevokedMsg({6, 7}).dump(),
        makeRevokedMsg({}).dump(),
        makeDoneMsg(done).dump(),
        makeErrorMsg("protocol mismatch: client speaks v1").dump(),
    };
}

std::string
joinStream(const std::vector<std::string> &messages)
{
    std::string stream;
    for (const std::string &m : messages) {
        stream += m;
        stream += '\n';
    }
    return stream;
}

/** Feed a byte range into a LineBuffer, draining complete lines. */
void
feedAndDrain(LineBuffer &buf, const char *data, std::size_t n,
             std::vector<std::string> &lines)
{
    buf.feed(data, n);
    std::string line;
    while (buf.next(line))
        lines.push_back(line);
}

} // namespace

// --------------------------------------------------------------------------
// Framing under fragmentation
// --------------------------------------------------------------------------

TEST(WireFraming, EveryTwoChunkSplitReassemblesIdentically)
{
    const std::vector<std::string> expected = sampleMessages();
    const std::string stream = joinStream(expected);

    for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
        LineBuffer buf;
        std::vector<std::string> lines;
        feedAndDrain(buf, stream.data(), cut, lines);
        feedAndDrain(buf, stream.data() + cut, stream.size() - cut,
                     lines);
        ASSERT_EQ(lines, expected) << "split at byte " << cut;
        std::string leftover;
        EXPECT_FALSE(buf.next(leftover));
    }
}

TEST(WireFraming, ByteByByteFeedReassemblesIdentically)
{
    const std::vector<std::string> expected = sampleMessages();
    const std::string stream = joinStream(expected);

    LineBuffer buf;
    std::vector<std::string> lines;
    for (char c : stream)
        feedAndDrain(buf, &c, 1, lines);
    EXPECT_EQ(lines, expected);
}

TEST(WireFraming, FragmentedStreamParsesToIdenticalJson)
{
    // Beyond framing: each reassembled line must parse to the same
    // canonical JSON as the unfragmented stream.
    const std::vector<std::string> expected = sampleMessages();
    const std::string stream = joinStream(expected);

    LineBuffer buf;
    std::vector<std::string> lines;
    // Awkward prime-sized chunks so fragments straddle every
    // message boundary at least once.
    for (std::size_t off = 0; off < stream.size(); off += 7)
        feedAndDrain(buf, stream.data() + off,
                     std::min<std::size_t>(7, stream.size() - off),
                     lines);
    ASSERT_EQ(lines.size(), expected.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        Json a, b;
        ASSERT_TRUE(Json::parse(lines[i], a)) << lines[i];
        ASSERT_TRUE(Json::parse(expected[i], b));
        EXPECT_EQ(a.dump(), b.dump()) << "message " << i;
    }
}

TEST(WireFraming, TrailingGarbageIsACleanParseErrorNotACrash)
{
    const std::vector<std::string> expected = sampleMessages();
    std::string stream = joinStream(expected);
    const std::string garbage = "{\"type\":\"job\", truncated\x01\x02";
    stream += garbage; // no trailing newline: stays buffered

    LineBuffer buf;
    std::vector<std::string> lines;
    for (std::size_t off = 0; off < stream.size(); off += 3)
        feedAndDrain(buf, stream.data() + off,
                     std::min<std::size_t>(3, stream.size() - off),
                     lines);
    // Valid prefix unharmed; the garbage never surfaced as a line.
    EXPECT_EQ(lines, expected);
    std::string leftover;
    EXPECT_FALSE(buf.next(leftover));

    // Terminate the garbage: it surfaces as one line and fails to
    // parse with a diagnostic, rather than crashing or misframing.
    buf.feed("\n", 1);
    ASSERT_TRUE(buf.next(leftover));
    EXPECT_EQ(leftover, garbage);
    Json msg;
    std::string error;
    EXPECT_FALSE(Json::parse(leftover, msg, &error));
    EXPECT_FALSE(error.empty());
}

TEST(WireFraming, BinaryGarbageStreamNeverMisparses)
{
    // A hostile peer sends framed binary junk: every line must come
    // back as a parse failure (or parse to JSON that the typed
    // decoders then reject) — never a valid-looking message.
    std::string stream;
    for (int i = 0; i < 256; ++i)
        stream += static_cast<char>(i);
    stream += '\n';
    stream += "[1,2,3]\n";     // valid JSON, wrong shape
    stream += "\"string\"\n";  // valid JSON, wrong shape
    stream += "{}\n";          // object without a type tag

    LineBuffer buf;
    std::vector<std::string> lines;
    for (std::size_t off = 0; off < stream.size(); off += 5)
        feedAndDrain(buf, stream.data() + off,
                     std::min<std::size_t>(5, stream.size() - off),
                     lines);
    for (const std::string &line : lines) {
        Json msg;
        if (!Json::parse(line, msg))
            continue; // clean parse error
        JobMsg job;
        PointMsg point;
        DoneMsg done;
        JobSpec spec;
        std::size_t index = 0;
        std::vector<std::size_t> indices;
        EXPECT_FALSE(decodeJobMsg(msg, job)) << line;
        EXPECT_FALSE(decodePointMsg(msg, point)) << line;
        EXPECT_FALSE(decodeDoneMsg(msg, done)) << line;
        EXPECT_FALSE(decodeExecMsg(msg, spec, index)) << line;
        EXPECT_FALSE(decodeRevokeMsg(msg, index)) << line;
        EXPECT_FALSE(decodeRevokedMsg(msg, indices)) << line;
    }
}

TEST(WireFraming, LineReaderSurvivesFragmentedWrites)
{
    const std::vector<std::string> expected = sampleMessages();
    const std::string stream = joinStream(expected);

    int pipefd[2];
    ASSERT_EQ(::pipe(pipefd), 0);
    std::thread writer([&stream, fd = pipefd[1]] {
        // Worst-case fragmentation: one byte per write.
        for (char c : stream)
            if (::write(fd, &c, 1) != 1)
                break;
        ::close(fd);
    });

    LineReader reader(pipefd[0]);
    std::vector<std::string> lines;
    std::string line;
    while (reader.readLine(line))
        lines.push_back(line);
    EXPECT_TRUE(reader.eof());
    writer.join();
    ::close(pipefd[0]);
    EXPECT_EQ(lines, expected);
}

// --------------------------------------------------------------------------
// Protocol v2 codec round-trips
// --------------------------------------------------------------------------

TEST(WireCodec, JobEnvelopeRoundTripsWithSubset)
{
    JobSpec spec;
    spec.scenario = "fig11";
    spec.trials = 5;
    spec.seed = 42;
    spec.extra["window"] = 64;

    JobMsg full;
    ASSERT_TRUE(decodeJobMsg(makeJobMsg(spec), full));
    EXPECT_EQ(full.protocol, kProtocolVersion);
    EXPECT_FALSE(full.hasSubset);
    EXPECT_EQ(full.spec.scenario, "fig11");
    EXPECT_EQ(full.spec.trials, 5u);
    EXPECT_EQ(full.spec.seed, 42u);
    EXPECT_EQ(full.spec.extra.at("window"), 64u);

    JobMsg subset;
    ASSERT_TRUE(
        decodeJobMsg(makeJobMsg(spec, {2, 0, 9}), subset));
    EXPECT_TRUE(subset.hasSubset);
    EXPECT_EQ(subset.points,
              (std::vector<std::size_t>{2, 0, 9}));

    // An empty subset is a valid (vacuous) job, distinct from "the
    // whole grid".
    JobMsg empty;
    ASSERT_TRUE(decodeJobMsg(makeJobMsg(spec, {}), empty));
    EXPECT_TRUE(empty.hasSubset);
    EXPECT_TRUE(empty.points.empty());
}

TEST(WireCodec, V1JobMessageDecodesAsProtocolOne)
{
    // What a v1 client sent: no "protocol", no "points".
    Json v1 = Json::object();
    v1.set("type", Json::str("job"));
    v1.set("scenario", Json::str("fig8"));
    v1.set("trials", Json::uinteger(1));
    v1.set("seed", Json::uinteger(7));

    JobMsg decoded;
    ASSERT_TRUE(decodeJobMsg(v1, decoded));
    EXPECT_EQ(decoded.protocol, 1u); // so the server can name it
    EXPECT_FALSE(decoded.hasSubset);
}

TEST(WireCodec, RevokeAndRevokedRoundTrip)
{
    std::size_t max_points = 0;
    ASSERT_TRUE(decodeRevokeMsg(makeRevokeMsg(17), max_points));
    EXPECT_EQ(max_points, 17u);

    std::vector<std::size_t> indices;
    ASSERT_TRUE(
        decodeRevokedMsg(makeRevokedMsg({3, 5, 8}), indices));
    EXPECT_EQ(indices, (std::vector<std::size_t>{3, 5, 8}));
    ASSERT_TRUE(decodeRevokedMsg(makeRevokedMsg({}), indices));
    EXPECT_TRUE(indices.empty());
}

TEST(WireCodec, DoneCarriesRevokedCount)
{
    DoneMsg done;
    done.points = 9;
    done.revoked = 4;
    DoneMsg decoded;
    ASSERT_TRUE(decodeDoneMsg(makeDoneMsg(done), decoded));
    EXPECT_EQ(decoded.points, 9u);
    EXPECT_EQ(decoded.revoked, 4u);
}

TEST(WireCodec, HelloAdvertisesVersionRange)
{
    const Json hello = makeHelloMsg(4, "cafebabe");
    EXPECT_EQ(hello.getU64("protocol"), kProtocolVersion);
    EXPECT_EQ(hello.getU64("min_protocol"), kMinProtocolVersion);
    EXPECT_EQ(hello.getU64("workers"), 4u);
}

TEST(WireCodec, MalformedSubsetIsRejected)
{
    JobSpec spec;
    spec.scenario = "fig8";
    Json j = makeJobMsg(spec);
    Json bad = Json::array();
    bad.push(Json::str("not-an-index"));
    j.set("points", std::move(bad));
    JobMsg decoded;
    EXPECT_FALSE(decodeJobMsg(j, decoded));

    Json j2 = makeJobMsg(spec);
    j2.set("points", Json::str("nope"));
    EXPECT_FALSE(decodeJobMsg(j2, decoded));
}
