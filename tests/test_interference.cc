/**
 * @file
 * Speculative interference end-to-end tests (§3.2, §4): the secret
 * measurably shifts the timing of older bound-to-retire instructions,
 * flips the order of unprotected accesses under vulnerable schemes,
 * and is neutralised by the paper's defenses.
 */

#include <gtest/gtest.h>

#include "attack/sender.hh"
#include "cpu/core.hh"
#include "sim/stats.hh"

namespace specint
{
namespace
{

struct Fixture
{
    Hierarchy hier{HierarchyConfig::small()};
    MainMemory mem;
    Core victim{CoreConfig{}, 0, hier, mem};
    AttackerAgent attacker{hier, 1};
    TrialHarness harness{hier, mem, victim, attacker};

    explicit Fixture(SchemeKind scheme)
    {
        victim.setScheme(makeScheme(scheme));
    }
};

TEST(NpeuInterference, GadgetDelaysOlderTargetChain)
{
    // Fig. 7: the interference target (f chain -> load A) completes
    // measurably later when the gadget contends for the EU.
    Fixture fx(SchemeKind::DomNonTso);
    SenderParams p;
    p.gadget = GadgetKind::Npeu;
    p.ordering = OrderingKind::VdVd;
    const SenderProgram sp = buildSender(p, fx.hier);

    Tick issue[2];
    for (unsigned secret = 0; secret < 2; ++secret) {
        fx.harness.prepare(sp, secret);
        fx.harness.run(sp);
        const auto *a = fx.victim.traceEntry("loadA");
        ASSERT_NE(a, nullptr);
        issue[secret] = a->issuedAt;
    }
    // secret=1: transmitter hits, gadget runs, A delayed by at least
    // one non-pipelined occupancy.
    EXPECT_GE(issue[1], issue[0] + opTraits(Op::FpSqrt).latency / 2);
}

TEST(NpeuInterference, OrderFlipsUnderDom)
{
    Fixture fx(SchemeKind::DomNonTso);
    SenderParams p;
    p.gadget = GadgetKind::Npeu;
    p.ordering = OrderingKind::VdVd;
    const SenderProgram sp = buildSender(p, fx.hier);

    int sig[2];
    for (unsigned secret = 0; secret < 2; ++secret) {
        fx.harness.prepare(sp, secret);
        sig[secret] = fx.harness.run(sp).orderSignal();
    }
    EXPECT_EQ(sig[0], 0); // A before B
    EXPECT_EQ(sig[1], 1); // B before A
}

TEST(NpeuInterference, FenceDefenseRemovesTheShift)
{
    Fixture fx(SchemeKind::FenceSpectre);
    SenderParams p;
    p.gadget = GadgetKind::Npeu;
    p.ordering = OrderingKind::VdVd;
    const SenderProgram sp = buildSender(p, fx.hier);

    Tick issue[2];
    for (unsigned secret = 0; secret < 2; ++secret) {
        fx.harness.prepare(sp, secret);
        fx.harness.run(sp);
        issue[secret] = fx.victim.traceEntry("loadA")->issuedAt;
    }
    EXPECT_EQ(issue[0], issue[1]);
}

TEST(NpeuInterference, AdvancedDefensePreemptionRemovesTheShift)
{
    Fixture fx(SchemeKind::AdvancedDefense);
    SenderParams p;
    p.gadget = GadgetKind::Npeu;
    p.ordering = OrderingKind::VdVd;
    const SenderProgram sp = buildSender(p, fx.hier);

    Tick issue[2];
    for (unsigned secret = 0; secret < 2; ++secret) {
        fx.harness.prepare(sp, secret);
        fx.harness.run(sp);
        issue[secret] = fx.victim.traceEntry("loadA")->issuedAt;
    }
    // The squashable-EU rule lets the older f chain preempt the
    // gadget: no secret-dependent delay remains.
    EXPECT_EQ(issue[0], issue[1]);
}

TEST(MshrInterference, GadgetBlocksOlderLoadQ)
{
    Fixture fx(SchemeKind::InvisiSpecSpectre);
    SenderParams p;
    p.gadget = GadgetKind::Mshr;
    p.ordering = OrderingKind::VdVd;
    const SenderProgram sp = buildSender(p, fx.hier);

    Tick q_issue[2];
    for (unsigned secret = 0; secret < 2; ++secret) {
        fx.harness.prepare(sp, secret);
        fx.harness.run(sp);
        const auto *q = fx.victim.traceEntry("loadQ");
        ASSERT_NE(q, nullptr);
        q_issue[secret] = q->issuedAt;
    }
    // secret=1: M distinct speculative misses exhaust the MSHRs and
    // the older load q stalls until one frees.
    EXPECT_GE(q_issue[1], q_issue[0] + 20);
}

TEST(MshrInterference, DomIssuesNoSpeculativeMissesSoNoPressure)
{
    Fixture fx(SchemeKind::DomNonTso);
    SenderParams p;
    p.gadget = GadgetKind::Mshr;
    p.ordering = OrderingKind::VdVd;
    const SenderProgram sp = buildSender(p, fx.hier);

    Tick q_issue[2];
    for (unsigned secret = 0; secret < 2; ++secret) {
        fx.harness.prepare(sp, secret);
        fx.harness.run(sp);
        q_issue[secret] = fx.victim.traceEntry("loadQ")->issuedAt;
    }
    EXPECT_EQ(q_issue[0], q_issue[1]);
}

TEST(MshrInterference, MshrCountSweepControlsTheDelay)
{
    // Ablation: with more MSHRs than gadget loads, the pressure
    // vanishes even under InvisiSpec.
    SenderParams p;
    p.gadget = GadgetKind::Mshr;
    p.ordering = OrderingKind::VdVd;
    p.mshrLoads = 10;

    for (unsigned mshrs : {10u, 24u}) {
        CoreConfig cfg;
        cfg.mshrs = mshrs;
        Hierarchy hier(HierarchyConfig::small());
        MainMemory mem;
        Core victim(cfg, 0, hier, mem);
        victim.setScheme(makeScheme(SchemeKind::InvisiSpecSpectre));
        AttackerAgent attacker(hier, 1);
        TrialHarness harness(hier, mem, victim, attacker);
        const SenderProgram sp = buildSender(p, hier);

        Tick q_issue[2];
        for (unsigned secret = 0; secret < 2; ++secret) {
            harness.prepare(sp, secret);
            harness.run(sp);
            q_issue[secret] = victim.traceEntry("loadQ")->issuedAt;
        }
        if (mshrs == 10)
            EXPECT_GT(q_issue[1], q_issue[0]);
        else
            EXPECT_EQ(q_issue[1], q_issue[0]);
    }
}

TEST(RsInterference, TransmitterMissBackThrottlesFetch)
{
    // Fig. 5 / §4.3: the target I-line is fetched iff the transmitter
    // hits (secret=0) under a scheme with unprotected I-fetch.
    Fixture fx(SchemeKind::DomNonTso);
    SenderParams p;
    p.gadget = GadgetKind::Rs;
    p.ordering = OrderingKind::Presence;
    const SenderProgram sp = buildSender(p, fx.hier);

    bool present[2];
    for (unsigned secret = 0; secret < 2; ++secret) {
        fx.harness.prepare(sp, secret);
        present[secret] = fx.harness.run(sp).targetPresent;
    }
    EXPECT_TRUE(present[0]);
    EXPECT_FALSE(present[1]);
}

TEST(RsInterference, ProtectedIFetchClosesTheChannel)
{
    Fixture fx(SchemeKind::SafeSpecWfb);
    SenderParams p;
    p.gadget = GadgetKind::Rs;
    p.ordering = OrderingKind::Presence;
    const SenderProgram sp = buildSender(p, fx.hier);

    for (unsigned secret = 0; secret < 2; ++secret) {
        fx.harness.prepare(sp, secret);
        EXPECT_FALSE(fx.harness.run(sp).targetPresent);
    }
}

TEST(RsInterference, HoldingRsUntilRetireClosesTheChannel)
{
    Fixture fx(SchemeKind::AdvancedDefense);
    SenderParams p;
    p.gadget = GadgetKind::Rs;
    p.ordering = OrderingKind::Presence;
    const SenderProgram sp = buildSender(p, fx.hier);

    bool present[2];
    for (unsigned secret = 0; secret < 2; ++secret) {
        fx.harness.prepare(sp, secret);
        present[secret] = fx.harness.run(sp).targetPresent;
    }
    // Constant behaviour (whatever it is) = no channel.
    EXPECT_EQ(present[0], present[1]);
}

TEST(RefCalibration, FindsMidpointOnlyWhenShiftExists)
{
    {
        Fixture fx(SchemeKind::InvisiSpecSpectre);
        SenderParams p;
        p.gadget = GadgetKind::Npeu;
        p.ordering = OrderingKind::VdAd;
        const SenderProgram sp = buildSender(p, fx.hier);
        EXPECT_GT(fx.harness.calibrateRefTime(sp), 0u);
    }
    {
        Fixture fx(SchemeKind::FenceSpectre);
        SenderParams p;
        p.gadget = GadgetKind::Npeu;
        p.ordering = OrderingKind::VdAd;
        const SenderProgram sp = buildSender(p, fx.hier);
        EXPECT_EQ(fx.harness.calibrateRefTime(sp), 0u);
    }
}

TEST(Fig7Shape, InterferenceHistogramSeparates)
{
    // Reproduce Fig. 7's shape: the target-completion histogram under
    // interference is clearly separated from the baseline.
    Fixture fx(SchemeKind::DomNonTso);
    SenderParams p;
    p.gadget = GadgetKind::Npeu;
    p.ordering = OrderingKind::VdVd;
    const SenderProgram sp = buildSender(p, fx.hier);

    SampleStat base, interf;
    NoiseConfig nc;
    nc.loadJitterProb = 0.3;
    nc.loadJitterMax = 6;
    NoiseModel noise(nc, 99);
    fx.victim.setNoise(&noise);
    for (unsigned t = 0; t < 40; ++t) {
        for (unsigned secret = 0; secret < 2; ++secret) {
            fx.harness.prepare(sp, secret);
            fx.harness.run(sp);
            const auto *a = fx.victim.traceEntry("loadA");
            ASSERT_NE(a, nullptr);
            (secret ? interf : base).add(
                static_cast<double>(a->issuedAt));
        }
    }
    EXPECT_GT(interf.mean(), base.mean() + 5.0);
    EXPECT_GT(interf.min(), base.max() - 10.0);
}

} // namespace
} // namespace specint
