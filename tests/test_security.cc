/**
 * @file
 * Security-definition tests (§5.1): the fence defenses satisfy ideal
 * invisible speculation (data-side C(E) == C(NoSpec(E))) and secret
 * independence; the attacked schemes falsify secret independence
 * exactly where Table 1 says they do.
 */

#include <gtest/gtest.h>

#include "attack/matrix.hh"
#include "attack/security.hh"

namespace specint
{
namespace
{

SenderParams
npeuVdVd()
{
    SenderParams p;
    p.gadget = GadgetKind::Npeu;
    p.ordering = OrderingKind::VdVd;
    return p;
}

class IdealInvisibleSpec : public ::testing::TestWithParam<SchemeKind>
{};

TEST_P(IdealInvisibleSpec, DefensesSatisfyTheDefinition)
{
    for (unsigned secret = 0; secret < 2; ++secret) {
        const SecurityCheck c = checkIdealInvisibleSpeculation(
            GetParam(), npeuVdVd(), secret);
        EXPECT_TRUE(c.holds)
            << schemeName(GetParam()) << " secret=" << secret
            << " diverges at " << c.divergeIndex << " (lenA=" << c.lenA
            << ", lenB=" << c.lenB << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Defenses, IdealInvisibleSpec,
    ::testing::Values(SchemeKind::FenceSpectre,
                      SchemeKind::FenceFuturistic),
    [](const auto &info) {
        std::string n = schemeName(info.param);
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(IdealInvisibleSpecNegative, UnsafeBaselineViolates)
{
    // With no defense, the mis-speculated gadget's loads appear in
    // C(E) but not in C(NoSpec(E)).
    const SecurityCheck c = checkIdealInvisibleSpeculation(
        SchemeKind::Unsafe, npeuVdVd(), 1);
    EXPECT_FALSE(c.holds);
}

TEST(SecretIndependence, ViolatedByVulnerableSchemes)
{
    for (SchemeKind s :
         {SchemeKind::DomNonTso, SchemeKind::InvisiSpecSpectre,
          SchemeKind::SafeSpecWfb}) {
        const SecurityCheck c = checkSecretIndependence(s, npeuVdVd());
        EXPECT_FALSE(c.holds) << schemeName(s);
    }
}

TEST(SecretIndependence, HoldsForTheDefenses)
{
    for (SchemeKind s :
         {SchemeKind::FenceSpectre, SchemeKind::FenceFuturistic,
          SchemeKind::AdvancedDefense}) {
        const SecurityCheck c = checkSecretIndependence(s, npeuVdVd());
        EXPECT_TRUE(c.holds)
            << schemeName(s) << " diverges at " << c.divergeIndex;
    }
}

TEST(SecretIndependence, MatchesTheVulnerabilityMatrix)
{
    // Property: for the VD-VD NPEU sender, secret independence holds
    // exactly when the matrix says the scheme is not vulnerable.
    for (SchemeKind s : attackedSchemes()) {
        const bool vulnerable =
            evaluateCell(GadgetKind::Npeu, OrderingKind::VdVd, s)
                .vulnerable;
        const SecurityCheck c = checkSecretIndependence(s, npeuVdVd());
        EXPECT_EQ(!c.holds, vulnerable) << schemeName(s);
    }
}

} // namespace
} // namespace specint
