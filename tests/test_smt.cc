/**
 * @file
 * SMT / unified-engine tests: two-thread architectural transparency,
 * per-thread squash isolation, partitioned-vs-shared resource
 * accounting, fetch arbitration fairness, and secret recovery through
 * the sibling-thread port/MSHR contention channel. (The golden-trace
 * regression pinning the engine cycle-for-cycle against the
 * pre-unification pipeline lives in tests/test_golden_traces.cc,
 * where it also exercises the fast-forward/stats-lite variants.)
 */

#include <gtest/gtest.h>

#include "attack/smt_probe.hh"
#include "cpu/core.hh"
#include "memory/hierarchy.hh"
#include "smt/fetch_arbiter.hh"
#include "smt/smt_core.hh"
#include "workload/generator.hh"

namespace specint
{
namespace
{

WorkloadSpec
fuzzSpec(std::uint64_t seed)
{
    WorkloadSpec spec;
    spec.name = "smt-fuzz";
    spec.instructions = 1000;
    spec.loadFrac = 0.30;
    spec.storeFrac = 0.08;
    spec.branchFrac = 0.15;
    spec.mulFrac = 0.05;
    spec.sqrtFrac = 0.03;
    spec.chaseFrac = 0.25;
    spec.footprintLines = 512;
    spec.branchTakenProb = 0.35;
    spec.seed = seed;
    return spec;
}

/** ALU/branch/FP-only workload: touches no memory, so it can share a
 *  MainMemory with a memory-heavy sibling without interacting. */
WorkloadSpec
computeOnlySpec(std::uint64_t seed)
{
    WorkloadSpec spec;
    spec.name = "smt-compute";
    spec.instructions = 800;
    spec.loadFrac = 0.0;
    spec.storeFrac = 0.0;
    spec.branchFrac = 0.15;
    spec.mulFrac = 0.10;
    spec.sqrtFrac = 0.05;
    spec.chaseFrac = 0.0;
    spec.branchTakenProb = 0.35;
    spec.seed = seed;
    return spec;
}

// ---------------------------------------------------------------------
// Two-thread architectural transparency
// ---------------------------------------------------------------------

TEST(SmtCoreTest, TwoThreadsComputeTheSameResultsAsAlone)
{
    // Both workloads must be store-free: the SMT threads share one
    // MainMemory, so a store on one thread would legitimately change
    // what the other reads (the generator's data-dependent branches
    // load from a common region). Loads may overlap freely.
    WorkloadSpec spec_mem = fuzzSpec(23);
    spec_mem.storeFrac = 0.0;
    const GeneratedWorkload wl_mem = generateWorkload(spec_mem);
    const GeneratedWorkload wl_cpu = generateWorkload(computeOnlySpec(59));

    // One memory image, applied identically to every run (the two
    // memInit sets overlap; later writes win, so order matters).
    auto init_mem = [&](MainMemory &mem) {
        for (const auto &[a, v] : wl_mem.memInit)
            mem.write(a, v);
        for (const auto &[a, v] : wl_cpu.memInit)
            mem.write(a, v);
    };

    // Solo reference runs.
    std::array<std::uint64_t, kNumRegs> solo_mem{}, solo_cpu{};
    {
        Hierarchy hier(HierarchyConfig::small());
        MainMemory mem;
        init_mem(mem);
        Core core(CoreConfig{}, 0, hier, mem);
        ASSERT_TRUE(core.run(wl_mem.prog).finished);
        for (unsigned r = 0; r < kNumRegs; ++r)
            solo_mem[r] = core.archReg(static_cast<RegId>(r));
    }
    {
        Hierarchy hier(HierarchyConfig::small());
        MainMemory mem;
        init_mem(mem);
        Core core(CoreConfig{}, 0, hier, mem);
        ASSERT_TRUE(core.run(wl_cpu.prog).finished);
        for (unsigned r = 0; r < kNumRegs; ++r)
            solo_cpu[r] = core.archReg(static_cast<RegId>(r));
    }

    // SMT runs under every sharing-policy combination: contention must
    // never change architectural results.
    for (SharingPolicy pol :
         {SharingPolicy::Shared, SharingPolicy::Partitioned}) {
        for (FetchPolicy fp :
             {FetchPolicy::RoundRobin, FetchPolicy::ICount}) {
            SmtConfig smt;
            smt.robPolicy = smt.rsPolicy = smt.lqPolicy = smt.sqPolicy =
                pol;
            smt.fetchPolicy = fp;
            Hierarchy hier(HierarchyConfig::small());
            MainMemory mem;
            init_mem(mem);
            SmtCore core(CoreConfig{}, smt, 0, hier, mem);
            const SmtRunResult run =
                core.run({&wl_mem.prog, &wl_cpu.prog});
            ASSERT_TRUE(run.finished) << smtConfigName(smt);
            for (unsigned r = 0; r < kNumRegs; ++r) {
                ASSERT_EQ(core.archReg(0, static_cast<RegId>(r)),
                          solo_mem[r])
                    << smtConfigName(smt) << " thread 0 r" << r;
                ASSERT_EQ(core.archReg(1, static_cast<RegId>(r)),
                          solo_cpu[r])
                    << smtConfigName(smt) << " thread 1 r" << r;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-thread squash isolation
// ---------------------------------------------------------------------

TEST(SmtCoreTest, SiblingMispredictDoesNotFlushOtherThread)
{
    // Thread A: a data-dependent branch the (untrained, weakly
    // not-taken) predictor mispredicts, with wrong-path ALUs.
    Program a;
    constexpr Addr kVal = 0x06000000;
    a.load(2, kNoReg, kVal, 1, "predicate");
    a.setReg(1, 5);
    const unsigned br = a.branch(BranchCond::LT, 1, 2, 0, "branch");
    a.alu(3, 3, kNoReg, 1); // wrong path
    a.alu(3, 3, kNoReg, 1);
    const unsigned target = a.alu(4, 4, kNoReg, 7, "target");
    a.setBranchTarget(br, target);
    a.halt();

    // Thread B: a straight dependent ALU chain.
    Program b;
    constexpr unsigned kChain = 60;
    for (unsigned i = 0; i < kChain; ++i)
        b.alu(10, 10, kNoReg, 1);
    b.halt();

    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    mem.write(kVal, 10); // 5 < 10: branch actually taken
    SmtCore core(CoreConfig{}, SmtConfig{}, 0, hier, mem);
    const SmtRunResult run = core.run({&a, &b});

    ASSERT_TRUE(run.finished);
    EXPECT_GE(run.threads[0].mispredicts, 1u);
    EXPECT_GE(run.threads[0].squashes, 1u);
    // The squash stayed on thread A...
    EXPECT_EQ(run.threads[1].squashes, 0u);
    EXPECT_EQ(run.threads[1].mispredicts, 0u);
    // ...B's architectural state is intact...
    EXPECT_EQ(core.archReg(1, 10), kChain);
    EXPECT_EQ(run.threads[1].retired, kChain + 1);
    // ...and A's wrong-path work never became architectural.
    EXPECT_EQ(core.archReg(0, 3), 0u);
    EXPECT_EQ(core.archReg(0, 4), 7u);
}

TEST(SmtUnitTest, PortSquashIsThreadLocal)
{
    PortSet ports;
    ports.beginCycle(10);
    // Non-pipelined units on port 0 (thread 0) and port 4... port 0
    // only has one unit; use issue() on two different ports.
    ports.issue(0, Op::FpSqrt, 10, 40, /*holder=*/7, true, /*tid=*/0);
    ports.issue(1, Op::IntMul, 10, 11, /*holder=*/9, true, /*tid=*/1);
    // IntMul is pipelined: no holder. Re-do port 1 with a sqrt-like
    // non-pipelined op cannot use port 1, so emulate with FpDiv on
    // port 0 of a second PortSet instead: simpler — verify squash of
    // the *other* thread leaves the unit busy.
    EXPECT_TRUE(ports.busy(0, 20));
    ports.squashThread(1, 0); // thread 1 squash: must not free tid-0 unit
    EXPECT_TRUE(ports.busy(0, 20));
    EXPECT_EQ(ports.holder(0), 7u);
    ports.squashThread(0, 0); // thread 0 squash frees it
    EXPECT_FALSE(ports.busy(0, 20));

    // Cross-thread contention is visible to the sibling only.
    ports.issue(0, Op::FpSqrt, 11, 40, 8, true, 0);
    EXPECT_TRUE(ports.contendedByOther(0, /*tid=*/1, 12));
    EXPECT_FALSE(ports.contendedByOther(0, /*tid=*/0, 12));
}

TEST(SmtUnitTest, MshrSquashAndAccountingAreThreadLocal)
{
    MshrFile mshr(4);
    ASSERT_TRUE(mshr.allocate(0x1000, 0, 100, 5, true, /*tid=*/0));
    ASSERT_TRUE(mshr.allocate(0x2000, 0, 100, 6, true, /*tid=*/0));
    ASSERT_TRUE(mshr.allocate(0x3000, 0, 100, 5, true, /*tid=*/1));
    EXPECT_EQ(mshr.inUse(0), 3u);
    EXPECT_EQ(mshr.inUseBy(0, 0), 2u);
    EXPECT_EQ(mshr.inUseBy(1, 0), 1u);
    EXPECT_EQ(mshr.inUseByOther(1, 0), 2u);

    // Thread 0 squash at bound 4 drops both tid-0 entries, not tid-1's.
    mshr.squashThread(0, 4);
    EXPECT_EQ(mshr.inUse(0), 1u);
    EXPECT_EQ(mshr.inUseBy(1, 0), 1u);

    // Same-thread-only speculative preemption.
    EXPECT_FALSE(mshr.preemptYoungestSpeculative(0, /*tid=*/0));
    EXPECT_TRUE(mshr.preemptYoungestSpeculative(0, /*tid=*/1));
}

// ---------------------------------------------------------------------
// Partitioned vs shared capacity accounting
// ---------------------------------------------------------------------

TEST(SmtUnitTest, ReservationStationPartitionedVsShared)
{
    auto make_inst = [](ThreadId tid) {
        OwnedDynInst d;
        d.inst.tid = tid;
        return d;
    };

    ReservationStation part(8, 2, SharingPolicy::Partitioned);
    std::vector<OwnedDynInst> insts;
    insts.reserve(16);
    for (unsigned i = 0; i < 4; ++i) {
        insts.push_back(make_inst(0));
        part.allocate(insts.back().inst);
    }
    EXPECT_TRUE(part.full(0));  // thread 0 exhausted its 8/2 share
    EXPECT_FALSE(part.full(1)); // thread 1's share untouched
    EXPECT_EQ(part.occupancy(), 4u);
    EXPECT_EQ(part.occupancyOther(1), 4u);

    ReservationStation shared(8, 2, SharingPolicy::Shared);
    std::vector<OwnedDynInst> insts2;
    insts2.reserve(16);
    for (unsigned i = 0; i < 8; ++i) {
        insts2.push_back(make_inst(0));
        shared.allocate(insts2.back().inst);
    }
    EXPECT_TRUE(shared.full(0));
    EXPECT_TRUE(shared.full(1)); // one thread can starve the sibling
}

TEST(SmtUnitTest, LsqPartitionedVsShared)
{
    static const StaticInst load_si = [] {
        StaticInst s;
        s.op = Op::Load;
        return s;
    }();
    auto load_inst = [](ThreadId tid) {
        OwnedDynInst d;
        d.inst.tid = tid;
        d.inst.setStaticInst(&load_si);
        return d;
    };

    Lsq part(4, 4, 2, SharingPolicy::Partitioned, SharingPolicy::Shared);
    for (unsigned i = 0; i < 2; ++i) {
        const OwnedDynInst d = load_inst(0);
        ASSERT_TRUE(part.allocate(d.inst));
    }
    EXPECT_TRUE(part.lqFull(0));
    EXPECT_FALSE(part.lqFull(1));

    Lsq shared(4, 4, 2, SharingPolicy::Shared, SharingPolicy::Shared);
    for (unsigned i = 0; i < 4; ++i) {
        const OwnedDynInst d = load_inst(0);
        ASSERT_TRUE(shared.allocate(d.inst));
    }
    EXPECT_TRUE(shared.lqFull(1));
    const OwnedDynInst d = load_inst(1);
    EXPECT_FALSE(shared.allocate(d.inst));
}

TEST(SmtCoreTest, PartitionedRsProtectsSiblingFromCongestion)
{
    // Thread A: a cold load feeding a long dependent ALU chain — the
    // chain parks in the RS until the miss returns (the G^I_RS
    // congestion pattern). Thread B: a long stream of independent
    // work, still dispatching while A's chain saturates the RS.
    // Distinct code bases plus explicit I-line warming keep cold
    // instruction fetch from masking the RS window.
    Program a(0x400000);
    a.load(2, kNoReg, 0x07000000, 1, "cold");
    for (unsigned i = 0; i < 150; ++i)
        a.alu(3, 2, 3, 1);
    a.halt();

    Program b(0x500000);
    for (unsigned i = 0; i < 300; ++i)
        b.alu(static_cast<RegId>(10 + (i % 16)), 1, kNoReg, 1);
    b.halt();

    auto run_b_cycles = [&](SharingPolicy rs_policy, FetchPolicy fp) {
        SmtConfig smt;
        smt.rsPolicy = rs_policy;
        smt.fetchPolicy = fp;
        Hierarchy hier(HierarchyConfig::small());
        MainMemory mem;
        SmtCore core(CoreConfig{}, smt, 0, hier, mem);
        for (const Program *p : {&a, &b})
            for (unsigned pc = 0; pc < p->size(); ++pc)
                hier.access(0, p->instLine(pc), AccessType::Instr, 0);
        const SmtRunResult run = core.run({&a, &b});
        EXPECT_TRUE(run.finished);
        return run.threads[1].cycles;
    };

    // RoundRobin fetch keeps A supplying the RS with parked work.
    const Tick part =
        run_b_cycles(SharingPolicy::Partitioned, FetchPolicy::RoundRobin);
    const Tick shared =
        run_b_cycles(SharingPolicy::Shared, FetchPolicy::RoundRobin);
    // Under competitive sharing A's parked chain back-pressures B's
    // dispatch until A's miss returns; a static partition isolates B.
    EXPECT_LT(part, shared);

    // ICOUNT fetch shields B even with a shared RS: the clogged
    // thread's inflated in-flight count starves it of fetch slots
    // before it can saturate the RS.
    const Tick icount =
        run_b_cycles(SharingPolicy::Shared, FetchPolicy::ICount);
    EXPECT_LT(icount, shared);
}

// ---------------------------------------------------------------------
// Fetch arbitration
// ---------------------------------------------------------------------

TEST(SmtUnitTest, FetchArbiterRoundRobinAlternates)
{
    FetchArbiter arb(FetchPolicy::RoundRobin, 2);
    std::vector<FetchArbiter::Candidate> c(2);
    c[0] = {true, 0};
    c[1] = {true, 0};
    EXPECT_EQ(arb.pick(c), 0);
    EXPECT_EQ(arb.pick(c), 1);
    EXPECT_EQ(arb.pick(c), 0);
    c[0].fetchable = false;
    EXPECT_EQ(arb.pick(c), 1); // skips the stalled thread
    c[0].fetchable = true;
    c[1].fetchable = false;
    EXPECT_EQ(arb.pick(c), 0);
    c[0].fetchable = false;
    EXPECT_EQ(arb.pick(c), -1);
}

TEST(SmtUnitTest, FetchArbiterICountPrefersEmptierThread)
{
    FetchArbiter arb(FetchPolicy::ICount, 2);
    std::vector<FetchArbiter::Candidate> c(2);
    c[0] = {true, 30};
    c[1] = {true, 4};
    EXPECT_EQ(arb.pick(c), 1);
    c[1].icount = 30;
    // Tie: rotating tie-break shares the stage.
    const int first = arb.pick(c);
    const int second = arb.pick(c);
    EXPECT_NE(first, second);
}

TEST(SmtCoreTest, FetchArbitrationIsFairForSymmetricThreads)
{
    const GeneratedWorkload wl0 = generateWorkload(computeOnlySpec(7));
    const GeneratedWorkload wl1 = generateWorkload(computeOnlySpec(7));

    for (FetchPolicy fp :
         {FetchPolicy::RoundRobin, FetchPolicy::ICount}) {
        SmtConfig smt;
        smt.fetchPolicy = fp;
        Hierarchy hier(HierarchyConfig::small());
        MainMemory mem;
        SmtCore core(CoreConfig{}, smt, 0, hier, mem);
        const SmtRunResult run = core.run({&wl0.prog, &wl1.prog});
        ASSERT_TRUE(run.finished);
        const auto g0 = run.threads[0].fetchGrants;
        const auto g1 = run.threads[1].fetchGrants;
        ASSERT_GT(g0 + g1, 0u);
        const double imbalance =
            static_cast<double>(g0 > g1 ? g0 - g1 : g1 - g0) /
            static_cast<double>(g0 + g1);
        EXPECT_LT(imbalance, 0.10) << fetchPolicyName(fp);
    }
}

// ---------------------------------------------------------------------
// The sibling-thread contention channel
// ---------------------------------------------------------------------

class SmtChannelRecovers
    : public ::testing::TestWithParam<std::tuple<SchemeKind, SmtChannelKind>>
{};

TEST_P(SmtChannelRecovers, SecretComesThroughContention)
{
    const auto [scheme, kind] = GetParam();
    const std::vector<std::uint8_t> bits = randomBits(16, 123);

    SmtChannelConfig cfg;
    cfg.scheme = scheme;
    cfg.attack.kind = kind;
    cfg.trialsPerBit = 1;

    const SmtChannelResult res = runSmtContentionChannel(bits, cfg);
    EXPECT_TRUE(res.calibration.usable)
        << schemeName(scheme) << " closed the "
        << smtChannelKindName(kind) << " channel";
    EXPECT_EQ(res.channel.bitErrors, 0u)
        << schemeName(scheme) << " over " << smtChannelKindName(kind);
    EXPECT_EQ(res.channel.bitsSent, bits.size());
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndKinds, SmtChannelRecovers,
    ::testing::Values(
        std::make_tuple(SchemeKind::Unsafe, SmtChannelKind::Port),
        std::make_tuple(SchemeKind::InvisiSpecSpectre,
                        SmtChannelKind::Port),
        std::make_tuple(SchemeKind::DomNonTso, SmtChannelKind::Port),
        std::make_tuple(SchemeKind::Unsafe, SmtChannelKind::Mshr),
        std::make_tuple(SchemeKind::InvisiSpecSpectre,
                        SmtChannelKind::Mshr)),
    [](const auto &info) {
        return "s" +
               std::to_string(
                   static_cast<int>(std::get<0>(info.param))) +
               (std::get<1>(info.param) == SmtChannelKind::Port
                    ? "_port"
                    : "_mshr");
    });

TEST(SmtChannelTest, FenceDefenseClosesTheChannel)
{
    SmtChannelConfig cfg;
    cfg.scheme = SchemeKind::FenceSpectre;
    const SmtChannelResult res =
        runSmtContentionChannel(randomBits(4, 1), cfg);
    EXPECT_FALSE(res.calibration.usable);
}

TEST(SmtChannelTest, ChannelSurvivesPartitionedWindowResources)
{
    // Partitioning ROB/RS/LQ/SQ does NOT close the channel: ports and
    // MSHRs are fully shared by design.
    SmtChannelConfig cfg;
    cfg.scheme = SchemeKind::InvisiSpecSpectre;
    cfg.smt.robPolicy = cfg.smt.rsPolicy = cfg.smt.lqPolicy =
        cfg.smt.sqPolicy = SharingPolicy::Partitioned;
    const SmtChannelResult res =
        runSmtContentionChannel(randomBits(8, 5), cfg);
    EXPECT_TRUE(res.calibration.usable);
    EXPECT_EQ(res.channel.bitErrors, 0u);
}

} // namespace
} // namespace specint
