/**
 * @file
 * CacheArray unit tests.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"

namespace specint
{
namespace
{

CacheGeometry
smallGeo(ReplKind kind = ReplKind::Lru)
{
    return {"test", 4, 2, kind, QlruVariant::h11m1r0u0()};
}

Addr
addrFor(unsigned set, unsigned k, unsigned sets = 4)
{
    return (static_cast<Addr>(k) * sets + set) << kLineShift;
}

TEST(CacheArray, MissThenFillThenHit)
{
    CacheArray c(smallGeo());
    const Addr a = addrFor(1, 0);
    EXPECT_FALSE(c.contains(a));
    EXPECT_FALSE(c.touch(a));
    EXPECT_EQ(c.fill(a), kAddrInvalid);
    EXPECT_TRUE(c.contains(a));
    EXPECT_TRUE(c.touch(a));
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
    EXPECT_EQ(c.stats().fills, 1u);
}

TEST(CacheArray, FillEvictsWhenSetFull)
{
    CacheArray c(smallGeo());
    const Addr a0 = addrFor(2, 0), a1 = addrFor(2, 1), a2 = addrFor(2, 2);
    c.fill(a0);
    c.fill(a1);
    const Addr evicted = c.fill(a2);
    EXPECT_EQ(evicted, a0); // LRU
    EXPECT_FALSE(c.contains(a0));
    EXPECT_TRUE(c.contains(a1));
    EXPECT_TRUE(c.contains(a2));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(CacheArray, TouchUpdatesLruOrder)
{
    CacheArray c(smallGeo());
    const Addr a0 = addrFor(0, 0), a1 = addrFor(0, 1), a2 = addrFor(0, 2);
    c.fill(a0);
    c.fill(a1);
    c.touch(a0); // a1 now LRU
    EXPECT_EQ(c.fill(a2), a1);
}

TEST(CacheArray, InvalidateRemovesLine)
{
    CacheArray c(smallGeo());
    const Addr a = addrFor(3, 0);
    c.fill(a);
    EXPECT_TRUE(c.invalidate(a));
    EXPECT_FALSE(c.contains(a));
    EXPECT_FALSE(c.invalidate(a));
    EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(CacheArray, InvalidWayReusedBeforeEviction)
{
    CacheArray c(smallGeo());
    const Addr a0 = addrFor(1, 0), a1 = addrFor(1, 1), a2 = addrFor(1, 2);
    c.fill(a0);
    c.fill(a1);
    c.invalidate(a0);
    EXPECT_EQ(c.fill(a2), kAddrInvalid); // no eviction needed
    EXPECT_TRUE(c.contains(a1));
}

TEST(CacheArray, DeferredTouchActsLikeHitUpdate)
{
    // DoM semantics: a speculative hit that defers its replacement
    // update leaves the line evictable until the update is applied.
    CacheArray c(smallGeo());
    const Addr a0 = addrFor(0, 0), a1 = addrFor(0, 1), a2 = addrFor(0, 2);
    c.fill(a0);
    c.fill(a1);
    // Probe (no update), then apply the deferred touch on a0.
    EXPECT_TRUE(c.probe(a0));
    c.deferredTouch(a0);
    EXPECT_EQ(c.fill(a2), a1); // a0 was refreshed, a1 evicted
}

TEST(CacheArray, DeferredTouchOnEvictedLineIsNoop)
{
    CacheArray c(smallGeo());
    const Addr a0 = addrFor(0, 0);
    c.fill(a0);
    c.invalidate(a0);
    c.deferredTouch(a0); // must not crash or corrupt state
    EXPECT_FALSE(c.contains(a0));
}

TEST(CacheArray, SnapshotReportsAges)
{
    CacheArray c({"q", 2, 4, ReplKind::Qlru, QlruVariant::h11m1r0u0()});
    const Addr a = addrFor(0, 0, 2);
    c.fill(a);
    const auto snap = c.snapshotSet(0);
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_TRUE(snap[0].valid);
    EXPECT_EQ(snap[0].lineAddr, a);
    EXPECT_EQ(snap[0].age, 1); // QLRU M1 insertion
    EXPECT_FALSE(snap[1].valid);
}

TEST(CacheArray, OccupancyCounts)
{
    CacheArray c(smallGeo());
    EXPECT_EQ(c.occupancy(1), 0u);
    c.fill(addrFor(1, 0));
    EXPECT_EQ(c.occupancy(1), 1u);
    c.fill(addrFor(1, 1));
    EXPECT_EQ(c.occupancy(1), 2u);
}

TEST(CacheArray, ResetClearsEverything)
{
    CacheArray c(smallGeo());
    c.fill(addrFor(0, 0));
    c.reset();
    EXPECT_FALSE(c.contains(addrFor(0, 0)));
    EXPECT_EQ(c.stats().fills, 0u);
}

TEST(CacheArray, SetIndexWrapsOnLineNumber)
{
    CacheArray c(smallGeo());
    EXPECT_EQ(c.setIndex(0), 0u);
    EXPECT_EQ(c.setIndex(64), 1u);
    EXPECT_EQ(c.setIndex(64 * 4), 0u);
    EXPECT_EQ(c.setIndex(63), 0u); // same line
}

} // namespace
} // namespace specint
