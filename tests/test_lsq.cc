/**
 * @file
 * Load/store queue unit tests: occupancy accounting and memory
 * disambiguation (conservative blocking + store-to-load forwarding).
 */

#include <gtest/gtest.h>

#include "cpu/lsq.hh"

namespace specint
{
namespace
{

DynInst
makeInst(SeqNum seq, Op op, Addr addr = kAddrInvalid,
         bool executed = false, std::uint64_t value = 0)
{
    DynInst d;
    d.seq = seq;
    d.si.op = op;
    d.effAddr = addr;
    d.result = value;
    d.state = executed ? InstState::Completed : InstState::Dispatched;
    return d;
}

TEST(Lsq, OccupancyAndCapacity)
{
    Lsq lsq(2, 1);
    DynInst l1 = makeInst(0, Op::Load);
    DynInst l2 = makeInst(1, Op::Load);
    DynInst l3 = makeInst(2, Op::Load);
    DynInst s1 = makeInst(3, Op::Store);
    DynInst s2 = makeInst(4, Op::Store);

    EXPECT_TRUE(lsq.allocate(l1));
    EXPECT_TRUE(lsq.allocate(l2));
    EXPECT_FALSE(lsq.allocate(l3)); // LQ full
    EXPECT_TRUE(lsq.allocate(s1));
    EXPECT_FALSE(lsq.allocate(s2)); // SQ full
    lsq.release(l1);
    EXPECT_TRUE(lsq.allocate(l3));
    EXPECT_EQ(lsq.loads(), 2u);
    EXPECT_EQ(lsq.stores(), 1u);
}

TEST(Lsq, NonMemOpsDoNotConsumeEntries)
{
    Lsq lsq(1, 1);
    DynInst alu = makeInst(0, Op::IntAlu);
    EXPECT_TRUE(lsq.allocate(alu));
    EXPECT_EQ(lsq.loads(), 0u);
    EXPECT_EQ(lsq.stores(), 0u);
}

TEST(Lsq, LoadBlockedByUnresolvedOlderStore)
{
    Lsq lsq;
    Rob rob;
    rob.push(makeInst(0, Op::Store)); // address unknown
    DynInst &load = rob.push(makeInst(1, Op::Load, 0x1000));

    const DisambigResult r = lsq.check(load, rob);
    EXPECT_TRUE(r.blocked);
    EXPECT_FALSE(r.forward);
}

TEST(Lsq, LoadForwardsFromMatchingOlderStore)
{
    Lsq lsq;
    Rob rob;
    rob.push(makeInst(0, Op::Store, 0x1000, true, 42));
    DynInst &load = rob.push(makeInst(1, Op::Load, 0x1000));

    const DisambigResult r = lsq.check(load, rob);
    EXPECT_FALSE(r.blocked);
    EXPECT_TRUE(r.forward);
    EXPECT_EQ(r.forwardValue, 42u);
}

TEST(Lsq, ForwardingMatchesWordGranularity)
{
    Lsq lsq;
    Rob rob;
    rob.push(makeInst(0, Op::Store, 0x1000, true, 42));
    DynInst &same_word = rob.push(makeInst(1, Op::Load, 0x1004));
    DynInst &next_word = rob.push(makeInst(2, Op::Load, 0x1008));

    EXPECT_TRUE(lsq.check(same_word, rob).forward);
    EXPECT_FALSE(lsq.check(next_word, rob).forward);
}

TEST(Lsq, NearestOlderStoreWins)
{
    Lsq lsq;
    Rob rob;
    rob.push(makeInst(0, Op::Store, 0x1000, true, 1));
    rob.push(makeInst(1, Op::Store, 0x1000, true, 2));
    DynInst &load = rob.push(makeInst(2, Op::Load, 0x1000));

    const DisambigResult r = lsq.check(load, rob);
    EXPECT_TRUE(r.forward);
    EXPECT_EQ(r.forwardValue, 2u);
}

TEST(Lsq, YoungerStoresAreIgnored)
{
    Lsq lsq;
    Rob rob;
    DynInst &load = rob.push(makeInst(0, Op::Load, 0x1000));
    rob.push(makeInst(1, Op::Store, 0x1000, false));

    const DisambigResult r = lsq.check(load, rob);
    EXPECT_FALSE(r.blocked);
    EXPECT_FALSE(r.forward);
}

} // namespace
} // namespace specint
