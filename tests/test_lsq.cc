/**
 * @file
 * Load/store queue unit tests: occupancy accounting and memory
 * disambiguation (conservative blocking + store-to-load forwarding).
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/lsq.hh"

namespace specint
{
namespace
{

/** Canonical StaticInst per op: DynInst holds a pointer into stable
 *  storage (the Program's code store in real runs). */
const StaticInst &
staticFor(Op op)
{
    static StaticInst insts[16];
    StaticInst &s = insts[static_cast<unsigned>(op)];
    s.op = op;
    return s;
}

/** Age-sorted in-flight store list as the engine maintains it on the
 *  thread context (pushed at dispatch, popped at retire/squash). */
std::vector<SeqNum>
storeList(const Rob &rob)
{
    std::vector<SeqNum> seqs;
    for (const auto &inst : rob)
        if (inst.isStore())
            seqs.push_back(inst.seq);
    return seqs;
}

OwnedDynInst
makeInst(SeqNum seq, Op op, Addr addr = kAddrInvalid,
         bool executed = false, std::uint64_t value = 0)
{
    OwnedDynInst o;
    DynInst &d = o.inst;
    d.seq = seq;
    d.setStaticInst(&staticFor(op));
    d.effAddr() = addr;
    d.result() = value;
    d.state = executed ? InstState::Completed : InstState::Dispatched;
    return o;
}

TEST(Lsq, OccupancyAndCapacity)
{
    Lsq lsq(2, 1);
    OwnedDynInst l1 = makeInst(0, Op::Load);
    OwnedDynInst l2 = makeInst(1, Op::Load);
    OwnedDynInst l3 = makeInst(2, Op::Load);
    OwnedDynInst s1 = makeInst(3, Op::Store);
    OwnedDynInst s2 = makeInst(4, Op::Store);

    EXPECT_TRUE(lsq.allocate(l1.inst));
    EXPECT_TRUE(lsq.allocate(l2.inst));
    EXPECT_FALSE(lsq.allocate(l3.inst)); // LQ full
    EXPECT_TRUE(lsq.allocate(s1.inst));
    EXPECT_FALSE(lsq.allocate(s2.inst)); // SQ full
    lsq.release(l1.inst);
    EXPECT_TRUE(lsq.allocate(l3.inst));
    EXPECT_EQ(lsq.loads(), 2u);
    EXPECT_EQ(lsq.stores(), 1u);
}

TEST(Lsq, NonMemOpsDoNotConsumeEntries)
{
    Lsq lsq(1, 1);
    OwnedDynInst alu = makeInst(0, Op::IntAlu);
    EXPECT_TRUE(lsq.allocate(alu.inst));
    EXPECT_EQ(lsq.loads(), 0u);
    EXPECT_EQ(lsq.stores(), 0u);
}

TEST(Lsq, LoadBlockedByUnresolvedOlderStore)
{
    Lsq lsq;
    Rob rob;
    rob.push(makeInst(0, Op::Store).inst); // address unknown
    DynInst &load = rob.push(makeInst(1, Op::Load, 0x1000).inst);

    const DisambigResult r = lsq.check(load, rob, storeList(rob));
    EXPECT_TRUE(r.blocked);
    EXPECT_FALSE(r.forward);
}

TEST(Lsq, LoadForwardsFromMatchingOlderStore)
{
    Lsq lsq;
    Rob rob;
    rob.push(makeInst(0, Op::Store, 0x1000, true, 42).inst);
    DynInst &load = rob.push(makeInst(1, Op::Load, 0x1000).inst);

    const DisambigResult r = lsq.check(load, rob, storeList(rob));
    EXPECT_FALSE(r.blocked);
    EXPECT_TRUE(r.forward);
    EXPECT_EQ(r.forwardValue, 42u);
}

TEST(Lsq, ForwardingMatchesWordGranularity)
{
    Lsq lsq;
    Rob rob;
    rob.push(makeInst(0, Op::Store, 0x1000, true, 42).inst);
    DynInst &same_word = rob.push(makeInst(1, Op::Load, 0x1004).inst);
    DynInst &next_word = rob.push(makeInst(2, Op::Load, 0x1008).inst);

    EXPECT_TRUE(lsq.check(same_word, rob, storeList(rob)).forward);
    EXPECT_FALSE(lsq.check(next_word, rob, storeList(rob)).forward);
}

TEST(Lsq, NearestOlderStoreWins)
{
    Lsq lsq;
    Rob rob;
    rob.push(makeInst(0, Op::Store, 0x1000, true, 1).inst);
    rob.push(makeInst(1, Op::Store, 0x1000, true, 2).inst);
    DynInst &load = rob.push(makeInst(2, Op::Load, 0x1000).inst);

    const DisambigResult r = lsq.check(load, rob, storeList(rob));
    EXPECT_TRUE(r.forward);
    EXPECT_EQ(r.forwardValue, 2u);
}

TEST(Lsq, YoungerStoresAreIgnored)
{
    Lsq lsq;
    Rob rob;
    DynInst &load = rob.push(makeInst(0, Op::Load, 0x1000).inst);
    rob.push(makeInst(1, Op::Store, 0x1000, false).inst);

    const DisambigResult r = lsq.check(load, rob, storeList(rob));
    EXPECT_FALSE(r.blocked);
    EXPECT_FALSE(r.forward);
}

} // namespace
} // namespace specint
