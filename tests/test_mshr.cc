/**
 * @file
 * MSHR file tests — the structure G^D_MSHR saturates.
 */

#include <gtest/gtest.h>

#include "memory/mshr.hh"

namespace specint
{
namespace
{

TEST(Mshr, AllocateUntilFull)
{
    MshrFile m(3);
    EXPECT_TRUE(m.allocate(0x000, 0, 100));
    EXPECT_TRUE(m.allocate(0x040, 0, 100));
    EXPECT_TRUE(m.allocate(0x080, 0, 100));
    EXPECT_TRUE(m.full(0));
    EXPECT_FALSE(m.allocate(0x0c0, 0, 100));
    EXPECT_EQ(m.inUse(0), 3u);
}

TEST(Mshr, SameLineMergesWhenFull)
{
    MshrFile m(2);
    EXPECT_TRUE(m.allocate(0x000, 0, 100));
    EXPECT_TRUE(m.allocate(0x040, 0, 100));
    // Merge into the existing 0x000 entry despite the file being full.
    EXPECT_TRUE(m.allocate(0x010, 0, 100)); // same line as 0x000
    EXPECT_EQ(m.inUse(0), 2u);
}

TEST(Mshr, EntriesExpireAtReadyTime)
{
    MshrFile m(2);
    m.allocate(0x000, 0, 50);
    m.allocate(0x040, 0, 80);
    EXPECT_EQ(m.inUse(49), 2u);
    EXPECT_EQ(m.inUse(50), 1u);
    EXPECT_EQ(m.inUse(80), 0u);
}

TEST(Mshr, ReadyAtQueries)
{
    MshrFile m(2);
    m.allocate(0x000, 0, 70);
    EXPECT_EQ(m.readyAt(0x020, 0), 70u); // same line
    EXPECT_EQ(m.readyAt(0x040, 0), kTickMax);
    EXPECT_EQ(m.earliestReady(0), 70u);
}

TEST(Mshr, EarliestReadyEmptyFile)
{
    MshrFile m(2);
    EXPECT_EQ(m.earliestReady(0), kTickMax);
}

TEST(Mshr, SquashDropsSpeculativeYounger)
{
    MshrFile m(4);
    m.allocate(0x000, 0, 100, 5, true);
    m.allocate(0x040, 0, 100, 9, true);
    m.allocate(0x080, 0, 100, 2, false); // non-speculative survives
    m.squashYoungerThan(5);
    EXPECT_EQ(m.inUse(0), 2u);
    EXPECT_TRUE(m.hasEntry(0x000, 0));
    EXPECT_FALSE(m.hasEntry(0x040, 0));
    EXPECT_TRUE(m.hasEntry(0x080, 0));
}

TEST(Mshr, PreemptFreesYoungestSpeculative)
{
    // The advanced defense's MSHR rule (§5.4).
    MshrFile m(2);
    m.allocate(0x000, 0, 100, 3, true);
    m.allocate(0x040, 0, 100, 8, true);
    EXPECT_TRUE(m.preemptYoungestSpeculative(0));
    EXPECT_FALSE(m.hasEntry(0x040, 0));
    EXPECT_TRUE(m.hasEntry(0x000, 0));
}

TEST(Mshr, PreemptSkipsNonSpeculative)
{
    MshrFile m(1);
    m.allocate(0x000, 0, 100, 3, false);
    EXPECT_FALSE(m.preemptYoungestSpeculative(0));
    EXPECT_TRUE(m.hasEntry(0x000, 0));
}

TEST(Mshr, ResetEmptiesFile)
{
    MshrFile m(2);
    m.allocate(0x000, 0, 100);
    m.reset();
    EXPECT_EQ(m.inUse(0), 0u);
}

} // namespace
} // namespace specint
