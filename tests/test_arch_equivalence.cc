/**
 * @file
 * Architectural-transparency fuzz test: every speculation-safety
 * scheme is a microarchitectural policy and must never change
 * architectural results. Random workloads (spanning loads, stores,
 * chases, data-dependent branches and FP ops) run under every scheme;
 * the final architectural register file and memory effects must match
 * the unsafe baseline exactly.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "memory/hierarchy.hh"
#include "workload/generator.hh"

namespace specint
{
namespace
{

struct ArchResult
{
    std::array<std::uint64_t, kNumRegs> regs{};
    bool finished = false;
    std::uint64_t retired = 0;
};

ArchResult
runUnder(SchemeKind scheme, const GeneratedWorkload &wl)
{
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    for (const auto &[a, v] : wl.memInit)
        mem.write(a, v);
    Core core(CoreConfig{}, 0, hier, mem);
    core.setScheme(makeScheme(scheme));
    const CoreStats stats = core.run(wl.prog);

    ArchResult res;
    res.finished = stats.finished;
    res.retired = stats.retired;
    for (unsigned r = 0; r < kNumRegs; ++r)
        res.regs[r] = core.archReg(static_cast<RegId>(r));
    return res;
}

class ArchEquivalence : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ArchEquivalence, AllSchemesComputeTheSameResults)
{
    WorkloadSpec spec;
    spec.name = "fuzz";
    spec.instructions = 1200;
    spec.loadFrac = 0.30;
    spec.storeFrac = 0.08;
    spec.branchFrac = 0.15;
    spec.mulFrac = 0.05;
    spec.sqrtFrac = 0.03;
    spec.chaseFrac = 0.25;
    spec.footprintLines = 512;
    spec.branchTakenProb = 0.35;
    spec.seed = GetParam();
    const GeneratedWorkload wl = generateWorkload(spec);

    const ArchResult baseline = runUnder(SchemeKind::Unsafe, wl);
    ASSERT_TRUE(baseline.finished);

    for (SchemeKind s : allSchemes()) {
        if (s == SchemeKind::Unsafe)
            continue;
        const ArchResult res = runUnder(s, wl);
        EXPECT_TRUE(res.finished) << schemeName(s);
        EXPECT_EQ(res.retired, baseline.retired) << schemeName(s);
        for (unsigned r = 0; r < kNumRegs; ++r) {
            ASSERT_EQ(res.regs[r], baseline.regs[r])
                << schemeName(s) << " diverges in r" << r
                << " (seed " << GetParam() << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchEquivalence,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u,
                                           97u),
                         [](const auto &info) {
                             return "seed" +
                                    std::to_string(info.param);
                         });

} // namespace
} // namespace specint
