/**
 * @file
 * Coherence and prefetcher tests: MESI directory transitions and the
 * traffic trace, write-intent invalidations through the Hierarchy,
 * speculative-store upgrade semantics, next-line/stride prefetch
 * transactions, training gates — and secret recovery through the
 * invalidation and prefetch-training channels end to end.
 */

#include <gtest/gtest.h>

#include "attack/coherence_probe.hh"
#include "memory/hierarchy.hh"
#include "system/system.hh"

namespace specint
{
namespace
{

HierarchyConfig
coherentConfig()
{
    HierarchyConfig cfg = HierarchyConfig::small();
    cfg.coherence.enabled = true;
    return cfg;
}

// ---------------------------------------------------------------------
// MESI directory transitions
// ---------------------------------------------------------------------

TEST(CoherenceDirectoryTest, FirstReaderIsExclusiveSecondShares)
{
    CoherenceDirectory dir(3, CoherenceParams{});
    const Addr line = 0x1000;

    auto r0 = dir.read(0, line, 0, true);
    EXPECT_EQ(r0.granted, MesiState::Exclusive);
    EXPECT_EQ(dir.state(0, line), MesiState::Exclusive);

    auto r1 = dir.read(1, line, 1, true);
    EXPECT_EQ(r1.granted, MesiState::Shared);
    // The former Exclusive owner is demoted alongside.
    EXPECT_EQ(dir.state(0, line), MesiState::Shared);
    EXPECT_EQ(dir.state(1, line), MesiState::Shared);
    EXPECT_EQ(r1.extraLatency, 0u); // clean owner: no writeback
}

TEST(CoherenceDirectoryTest, ReadOfModifiedLinePaysWriteback)
{
    CoherenceParams params;
    params.writebackLatency = 40;
    CoherenceDirectory dir(3, params);
    const Addr line = 0x2000;

    dir.read(0, line, 0, true);
    dir.write(0, line, 1, true);
    EXPECT_EQ(dir.state(0, line), MesiState::Modified);

    auto r1 = dir.read(1, line, 2, true);
    EXPECT_EQ(r1.extraLatency, params.writebackLatency);
    EXPECT_EQ(dir.state(0, line), MesiState::Shared);
    EXPECT_EQ(dir.state(1, line), MesiState::Shared);
    EXPECT_EQ(dir.stats(0).downgradesReceived, 1u);
}

TEST(CoherenceDirectoryTest, WriteInvalidatesRemoteSharers)
{
    CoherenceParams params;
    params.invalidateLatency = 24;
    CoherenceDirectory dir(3, params);
    const Addr line = 0x3000;

    dir.read(0, line, 0, true);
    dir.read(1, line, 1, true);
    dir.read(2, line, 2, true);

    auto w = dir.write(0, line, 3, true);
    EXPECT_EQ(w.invalidate.size(), 2u);
    EXPECT_EQ(w.extraLatency, params.invalidateLatency);
    EXPECT_EQ(dir.state(0, line), MesiState::Modified);
    EXPECT_EQ(dir.state(1, line), MesiState::Invalid);
    EXPECT_EQ(dir.state(2, line), MesiState::Invalid);
    EXPECT_EQ(dir.stats(0).invalidationsSent, 2u);
    EXPECT_EQ(dir.stats(1).invalidationsReceived, 1u);
    EXPECT_EQ(dir.stats(2).invalidationsReceived, 1u);
}

TEST(CoherenceDirectoryTest, SoleOwnerUpgradesSilently)
{
    CoherenceDirectory dir(2, CoherenceParams{});
    const Addr line = 0x4000;
    dir.read(0, line, 0, true);

    auto w = dir.write(0, line, 1, true);
    EXPECT_TRUE(w.invalidate.empty());
    EXPECT_EQ(w.extraLatency, 0u);
    EXPECT_EQ(dir.state(0, line), MesiState::Modified);
}

TEST(CoherenceDirectoryTest, DeferredUpgradeInvalidatesButTakesNoState)
{
    CoherenceDirectory dir(3, CoherenceParams{});
    const Addr line = 0x5000;
    dir.read(1, line, 0, true);
    dir.read(2, line, 1, true);

    // The InvisiSpec-style speculative RFO: remote sharers go, the
    // requester's own upgrade waits for the safe point.
    auto w = dir.write(0, line, 2, /*take_ownership=*/false);
    EXPECT_EQ(w.invalidate.size(), 2u);
    EXPECT_EQ(dir.state(0, line), MesiState::Invalid);
    EXPECT_EQ(dir.state(1, line), MesiState::Invalid);
    EXPECT_EQ(dir.state(2, line), MesiState::Invalid);
}

TEST(CoherenceDirectoryTest, TraceRecordsMessages)
{
    CoherenceDirectory dir(2, CoherenceParams{});
    const Addr line = 0x6000;
    dir.read(0, line, 10, true);
    dir.read(1, line, 11, true);
    dir.write(1, line, 12, true);

    // ExclusiveFill, Downgrade(0), SharedFill(1), Invalidate(0->...),
    // Upgrade(1).
    const auto &trace = dir.trace();
    ASSERT_GE(trace.size(), 4u);
    EXPECT_EQ(trace.front().msg, CoherenceMsg::ExclusiveFill);
    bool saw_invalidate = false;
    for (const CoherenceEvent &e : trace) {
        if (e.msg == CoherenceMsg::Invalidate) {
            saw_invalidate = true;
            EXPECT_EQ(e.from, 1);
            EXPECT_EQ(e.to, 0);
            EXPECT_EQ(e.when, 12u);
            EXPECT_EQ(e.line, line);
        }
    }
    EXPECT_TRUE(saw_invalidate);
}

// ---------------------------------------------------------------------
// Coherence through the Hierarchy
// ---------------------------------------------------------------------

TEST(HierarchyCoherenceTest, WriteIntentInvalidatesRemotePrivateCopy)
{
    Hierarchy hier(coherentConfig());
    const Addr a = 0x1000;

    hier.access(1, a, AccessType::Data, 0);
    ASSERT_TRUE(hier.l1d(1).contains(a));

    const MemAccessResult w =
        hier.access(0, a, AccessType::Data, 1, MemIntent::Write);
    EXPECT_EQ(w.invalidations, 1u);
    EXPECT_GT(w.coherenceDelay, 0u);
    EXPECT_FALSE(hier.l1d(1).contains(a));
    EXPECT_FALSE(hier.l2(1).contains(a));
    // The LLC copy survives: only private copies are invalidated.
    EXPECT_TRUE(hier.llcContains(a));
    EXPECT_EQ(hier.coherenceStats(0).invalidationsSent, 1u);
    EXPECT_EQ(hier.coherenceStats(1).invalidationsReceived, 1u);
}

TEST(HierarchyCoherenceTest, SpecStoreUpgradeIsIrrevocable)
{
    Hierarchy hier(coherentConfig());
    const Addr a = 0x2000;
    hier.access(1, a, AccessType::Data, 0);
    ASSERT_TRUE(hier.l1d(1).contains(a));

    // Deferred-upgrade RFO (InvisiSpec-style): the remote copy is
    // gone even though the requester never took ownership — and
    // nothing ever "squashes" it back in.
    const Tick extra = hier.specStoreUpgrade(0, a, 1, false);
    EXPECT_GT(extra, 0u);
    EXPECT_FALSE(hier.l1d(1).contains(a));
    EXPECT_EQ(hier.coherenceDirectory().state(0, a),
              MesiState::Invalid);
}

TEST(HierarchyCoherenceTest, OffByDefaultChangesNothing)
{
    Hierarchy hier(HierarchyConfig::small());
    const Addr a = 0x3000;
    hier.access(1, a, AccessType::Data, 0);
    const MemAccessResult w =
        hier.access(0, a, AccessType::Data, 1, MemIntent::Write);
    EXPECT_EQ(w.invalidations, 0u);
    EXPECT_EQ(w.coherenceDelay, 0u);
    EXPECT_TRUE(hier.l1d(1).contains(a));
    EXPECT_TRUE(hier.coherenceTrace().empty());
    EXPECT_EQ(hier.specStoreUpgrade(0, a, 2, true), 0u);
}

TEST(HierarchyCoherenceTest, SpareDirectClientIdWorksStandalone)
{
    // A standalone Hierarchy must honour the spare direct-LLC client
    // convention (id == cores) with coherence enabled: the direct
    // read downgrades a dirty owner without joining the sharer set.
    Hierarchy hier(coherentConfig());
    const CoreId spare =
        static_cast<CoreId>(hier.config().cores);
    const Addr a = 0x6000;

    hier.access(0, a, AccessType::Data, 0);
    hier.access(0, a, AccessType::Data, 1, MemIntent::Write);
    ASSERT_EQ(hier.coherenceDirectory().state(0, a),
              MesiState::Modified);

    const MemAccessResult r = hier.accessDirect(spare, a, 2);
    EXPECT_GT(r.coherenceDelay, 0u); // paid the dirty writeback
    EXPECT_EQ(hier.coherenceDirectory().state(0, a),
              MesiState::Shared);
    EXPECT_TRUE(hier.coherenceDirectory().sharers(a).size() == 1);
}

TEST(HierarchyCoherenceTest, FlushDropsDirectoryState)
{
    Hierarchy hier(coherentConfig());
    const Addr a = 0x4000;
    hier.access(0, a, AccessType::Data, 0);
    EXPECT_NE(hier.coherenceDirectory().state(0, a),
              MesiState::Invalid);
    hier.flushLine(a);
    EXPECT_EQ(hier.coherenceDirectory().state(0, a),
              MesiState::Invalid);
}

// ---------------------------------------------------------------------
// Prefetcher
// ---------------------------------------------------------------------

TEST(PrefetcherTest, NextLinePrefetchFillsL2AndLlcNotL1)
{
    HierarchyConfig cfg = HierarchyConfig::small();
    cfg.prefetch.kind = PrefetchKind::NextLine;
    cfg.prefetch.degree = 2;
    Hierarchy hier(cfg);

    const Addr a = 0x8000;
    hier.access(0, a, AccessType::Data, 0);

    for (unsigned d = 1; d <= 2; ++d) {
        const Addr next = a + d * kLineBytes;
        EXPECT_TRUE(hier.llcContains(next)) << d;
        EXPECT_TRUE(hier.l2(0).contains(next)) << d;
        EXPECT_FALSE(hier.l1d(0).contains(next)) << d;
    }
    EXPECT_EQ(hier.prefetchStats(0).issued, 2u);
    EXPECT_EQ(hier.prefetchStats(0).llcFills, 2u);
}

TEST(PrefetcherTest, PrefetchTransactionsAppearInTheLlcTrace)
{
    HierarchyConfig cfg = HierarchyConfig::small();
    cfg.prefetch.kind = PrefetchKind::NextLine;
    Hierarchy hier(cfg);

    hier.access(0, 0x8000, AccessType::Data, 5);
    bool saw_prefetch = false;
    for (const VisibleAccess &va : hier.llcTrace()) {
        if (va.source == TxnSource::Prefetch) {
            saw_prefetch = true;
            EXPECT_EQ(va.lineAddr, lineAlign(0x8000 + kLineBytes));
        }
    }
    EXPECT_TRUE(saw_prefetch);
}

TEST(PrefetcherTest, StrideConfirmationRequired)
{
    HierarchyConfig cfg = HierarchyConfig::small();
    cfg.prefetch.kind = PrefetchKind::Stride;
    cfg.prefetch.degree = 1;
    Hierarchy hier(cfg);

    // Stride of 2 lines within one page: the third access confirms.
    const Addr base = 0x10000;
    hier.access(0, base, AccessType::Data, 0);
    hier.access(0, base + 128, AccessType::Data, 1);
    EXPECT_EQ(hier.prefetchStats(0).issued, 0u); // unconfirmed
    hier.access(0, base + 256, AccessType::Data, 2);
    EXPECT_EQ(hier.prefetchStats(0).issued, 1u);
    EXPECT_TRUE(hier.llcContains(base + 384));
}

TEST(PrefetcherTest, InvisibleAccessTrainsOnlyWhenAsked)
{
    HierarchyConfig cfg = HierarchyConfig::small();
    cfg.prefetch.kind = PrefetchKind::NextLine;
    Hierarchy hier(cfg);

    const Addr a = 0x20000;
    hier.accessInvisible(0, a, AccessType::Data, 0, /*train=*/false);
    EXPECT_EQ(hier.prefetchStats(0).issued, 0u);
    EXPECT_FALSE(hier.llcContains(a + kLineBytes));

    // The InvisiSpec leak: the demand request changes no state, but
    // the prefetch it trains is an ordinary visible fill.
    hier.accessInvisible(0, a, AccessType::Data, 1, /*train=*/true);
    EXPECT_EQ(hier.prefetchStats(0).issued, 1u);
    EXPECT_FALSE(hier.llcContains(a)); // demand stayed invisible
    EXPECT_TRUE(hier.llcContains(a + kLineBytes)); // prefetch did not
}

TEST(PrefetcherTest, OffByDefaultIssuesNothing)
{
    Hierarchy hier(HierarchyConfig::small());
    hier.access(0, 0x8000, AccessType::Data, 0);
    EXPECT_FALSE(hier.llcContains(0x8000 + kLineBytes));
    EXPECT_EQ(hier.prefetchStats(0).issued, 0u);
}

// ---------------------------------------------------------------------
// The end-to-end channels
// ---------------------------------------------------------------------

class CoherenceChannelRecovers
    : public ::testing::TestWithParam<
          std::tuple<SchemeKind, CoherenceChannelKind>>
{};

TEST_P(CoherenceChannelRecovers, SecretComesThroughTheRequest)
{
    const auto [scheme, kind] = GetParam();
    const std::vector<std::uint8_t> bits = randomBits(12, 123);

    CoherenceChannelConfig cfg;
    cfg.scheme = scheme;
    cfg.attack.kind = kind;
    cfg.trialsPerBit = 1;

    const CoherenceChannelResult res = runCoherenceChannel(bits, cfg);
    EXPECT_TRUE(res.calibration.usable)
        << schemeName(scheme) << " closed the "
        << coherenceChannelKindName(kind) << " channel";
    EXPECT_EQ(res.channel.bitErrors, 0u)
        << schemeName(scheme) << " over "
        << coherenceChannelKindName(kind);
    EXPECT_EQ(res.channel.bitsSent, bits.size());
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndKinds, CoherenceChannelRecovers,
    ::testing::Values(
        std::make_tuple(SchemeKind::Unsafe,
                        CoherenceChannelKind::Invalidation),
        std::make_tuple(SchemeKind::InvisiSpecSpectre,
                        CoherenceChannelKind::Invalidation),
        std::make_tuple(SchemeKind::SafeSpecWfb,
                        CoherenceChannelKind::Invalidation),
        std::make_tuple(SchemeKind::MuonTrap,
                        CoherenceChannelKind::Invalidation),
        std::make_tuple(SchemeKind::Unsafe,
                        CoherenceChannelKind::PrefetchTraining),
        std::make_tuple(SchemeKind::InvisiSpecSpectre,
                        CoherenceChannelKind::PrefetchTraining),
        std::make_tuple(SchemeKind::MuonTrap,
                        CoherenceChannelKind::PrefetchTraining)),
    [](const auto &info) {
        return "s" +
               std::to_string(
                   static_cast<int>(std::get<0>(info.param))) +
               (std::get<1>(info.param) ==
                        CoherenceChannelKind::Invalidation
                    ? "_invalidation"
                    : "_prefetch");
    });

TEST(CoherenceChannelTest, DomAndFencesCloseBothChannels)
{
    const std::vector<std::uint8_t> bits = randomBits(4, 1);
    for (SchemeKind scheme :
         {SchemeKind::DomNonTso, SchemeKind::ConditionalSpec,
          SchemeKind::FenceSpectre, SchemeKind::FenceFuturistic,
          SchemeKind::AdvancedDefense}) {
        for (CoherenceChannelKind kind :
             {CoherenceChannelKind::Invalidation,
              CoherenceChannelKind::PrefetchTraining}) {
            CoherenceChannelConfig cfg;
            cfg.scheme = scheme;
            cfg.attack.kind = kind;
            EXPECT_FALSE(
                runCoherenceChannel(bits, cfg).calibration.usable)
                << schemeName(scheme) << " left the "
                << coherenceChannelKindName(kind) << " channel open";
        }
    }
}

TEST(CoherenceChannelTest, InvalidationLeavesCoherenceTraffic)
{
    // The channel's physical substrate: a secret=1 trial must produce
    // an Invalidate message against the probe core, a secret=0 trial
    // must not.
    CoherenceAttackParams params;
    params.kind = CoherenceChannelKind::Invalidation;
    CoherenceHarness harness(params, SchemeKind::InvisiSpecSpectre);
    Hierarchy &hier = harness.system().hierarchy();

    harness.prepare(0);
    harness.runTrial();
    unsigned invalidations = 0;
    for (const CoherenceEvent &e : hier.coherenceTrace())
        if (e.msg == CoherenceMsg::Invalidate && e.to == 1)
            ++invalidations;
    EXPECT_EQ(invalidations, 0u);

    harness.prepare(1);
    harness.runTrial();
    invalidations = 0;
    for (const CoherenceEvent &e : hier.coherenceTrace())
        if (e.msg == CoherenceMsg::Invalidate && e.to == 1)
            ++invalidations;
    EXPECT_GT(invalidations, 0u);
}

} // namespace
} // namespace specint
