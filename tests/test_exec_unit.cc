/**
 * @file
 * PortSet unit tests: per-cycle issue slots, non-pipelined occupancy
 * (the G^D_NPEU contention point), squash release and the advanced
 * defense's preemption.
 */

#include <gtest/gtest.h>

#include "cpu/exec_unit.hh"

namespace specint
{
namespace
{

TEST(PortSet, OneIssuePerPortPerCycle)
{
    PortSet ps;
    EXPECT_TRUE(ps.canIssue(5, 10));
    ps.issue(5, Op::IntAlu, 10, 11, 1, false);
    EXPECT_FALSE(ps.canIssue(5, 10));
    EXPECT_TRUE(ps.canIssue(6, 10));
    EXPECT_TRUE(ps.canIssue(5, 11)); // pipelined: free next cycle
}

TEST(PortSet, NonPipelinedOccupiesUntilCompletion)
{
    PortSet ps;
    ps.issue(0, Op::FpSqrt, 10, 25, 7, true);
    EXPECT_FALSE(ps.canIssue(0, 11));
    EXPECT_FALSE(ps.canIssue(0, 24));
    EXPECT_TRUE(ps.canIssue(0, 25));
    EXPECT_EQ(ps.holder(0), 7u);
}

TEST(PortSet, SelectPortHonoursPreferenceOrder)
{
    PortSet ps;
    // IntAlu prefers 5, 6, 1, 0.
    EXPECT_EQ(ps.selectPort(Op::IntAlu, 0), 5);
    ps.issue(5, Op::IntAlu, 0, 1, 1, false);
    EXPECT_EQ(ps.selectPort(Op::IntAlu, 0), 6);
    ps.issue(6, Op::IntAlu, 0, 1, 2, false);
    ps.issue(1, Op::IntAlu, 0, 1, 3, false);
    ps.issue(0, Op::IntAlu, 0, 1, 4, false);
    EXPECT_EQ(ps.selectPort(Op::IntAlu, 0), -1);
}

TEST(PortSet, ReleaseIfHeldByFreesUnit)
{
    PortSet ps;
    ps.issue(0, Op::FpDiv, 0, 50, 9, false);
    ps.releaseIfHeldBy(8); // wrong holder: no-op
    EXPECT_TRUE(ps.busy(0, 10));
    ps.releaseIfHeldBy(9);
    EXPECT_FALSE(ps.busy(0, 10));
}

TEST(PortSet, SquashFreesYoungerHolders)
{
    PortSet ps;
    ps.issue(0, Op::FpSqrt, 0, 50, 20, true);
    ps.squashYoungerThan(25); // 20 <= 25: survives
    EXPECT_TRUE(ps.busy(0, 10));
    ps.squashYoungerThan(10); // 20 > 10: squashed
    EXPECT_FALSE(ps.busy(0, 10));
}

TEST(PortSet, PreemptOnlyYoungerSpeculativeHolders)
{
    PortSet ps;
    // Older requester (seq 5) preempts the younger speculative
    // occupant (seq 30).
    ps.issue(0, Op::FpSqrt, 0, 50, 30, true);
    EXPECT_EQ(ps.preempt(0, 5), 30u);
    EXPECT_FALSE(ps.busy(0, 10));

    // Non-speculative occupants are never preempted.
    ps.issue(0, Op::FpSqrt, 0, 50, 30, false);
    EXPECT_EQ(ps.preempt(0, 5), kSeqNumInvalid);
    EXPECT_TRUE(ps.busy(0, 10));
    ps.reset();

    // A younger requester cannot preempt an older holder.
    ps.issue(0, Op::FpSqrt, 0, 50, 5, true);
    EXPECT_EQ(ps.preempt(0, 30), kSeqNumInvalid);
}

TEST(PortSet, ResetClearsEverything)
{
    PortSet ps;
    ps.issue(0, Op::FpSqrt, 0, 100, 3, true);
    ps.issue(5, Op::IntAlu, 0, 1, 4, false);
    ps.reset();
    EXPECT_TRUE(ps.canIssue(0, 0));
    EXPECT_TRUE(ps.canIssue(5, 0));
    EXPECT_EQ(ps.holder(0), kSeqNumInvalid);
}

} // namespace
} // namespace specint
