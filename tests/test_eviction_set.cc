/**
 * @file
 * Eviction-set construction tests.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "memory/eviction_set.hh"

namespace specint
{
namespace
{

TEST(EvictionSet, AllLinesCongruentWithTarget)
{
    Hierarchy hier(HierarchyConfig::small());
    const Addr target = 0x01000000;
    const auto evs = buildEvictionSet(hier, target, 15);
    EXPECT_EQ(evs.size(), 15u);
    for (Addr a : evs) {
        EXPECT_EQ(hier.llcSetIndex(a), hier.llcSetIndex(target));
        EXPECT_EQ(hier.llcSliceIndex(a), hier.llcSliceIndex(target));
        EXPECT_NE(a, lineAlign(target));
    }
}

TEST(EvictionSet, LinesAreDistinct)
{
    Hierarchy hier(HierarchyConfig::small());
    const auto evs = buildEvictionSet(hier, 0x01000000, 20);
    std::set<Addr> uniq(evs.begin(), evs.end());
    EXPECT_EQ(uniq.size(), evs.size());
}

TEST(EvictionSet, RespectsExclusions)
{
    Hierarchy hier(HierarchyConfig::small());
    const Addr target = 0x01000000;
    const auto first = buildEvictionSet(hier, target, 5);
    const auto second =
        buildEvictionSet(hier, target, 5, 0x10000000, first);
    for (Addr a : second)
        EXPECT_EQ(std::count(first.begin(), first.end(), a), 0);
}

TEST(EvictionSet, EvictionSetActuallyEvicts)
{
    Hierarchy hier(HierarchyConfig::small());
    const Addr target = 0x01000000;
    hier.accessDirect(1, target, 0);
    ASSERT_TRUE(hier.llcContains(target));
    const unsigned ways = hier.config().llcSlice.ways;
    // 2x associativity accesses guarantee eviction under QLRU.
    const auto evs = buildEvictionSet(hier, target, 2 * ways);
    for (Addr a : evs)
        hier.accessDirect(1, a, 0);
    EXPECT_FALSE(hier.llcContains(target));
}

TEST(EvictionSet, FindCongruentAddrMatches)
{
    Hierarchy hier(HierarchyConfig::small());
    const Addr target = 0x02000040;
    const Addr b = findCongruentAddr(hier, target);
    EXPECT_EQ(hier.llcSetIndex(b), hier.llcSetIndex(target));
    EXPECT_EQ(hier.llcSliceIndex(b), hier.llcSliceIndex(target));
    EXPECT_NE(b, lineAlign(target));
}

} // namespace
} // namespace specint
