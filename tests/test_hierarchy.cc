/**
 * @file
 * Hierarchy tests: level latencies, fills, inclusivity, invisible
 * accesses, the visible LLC trace (C(E)), flush and direct access.
 */

#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

namespace specint
{
namespace
{

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest() : hier(HierarchyConfig::small()) {}
    Hierarchy hier;
    const HierarchyConfig &cfg = hier.config();
};

TEST_F(HierarchyTest, ColdMissGoesToMemoryAndFillsAllLevels)
{
    const Addr a = 0x1000;
    const auto r = hier.access(0, a, AccessType::Data, 0);
    EXPECT_EQ(r.servedBy, ServedBy::Mem);
    EXPECT_EQ(r.latency, cfg.l1Latency + cfg.l2Latency +
                             cfg.llcLatency + cfg.memLatency);
    EXPECT_TRUE(hier.l1d(0).contains(a));
    EXPECT_TRUE(hier.l2(0).contains(a));
    EXPECT_TRUE(hier.llcContains(a));
}

TEST_F(HierarchyTest, SecondAccessHitsL1)
{
    const Addr a = 0x1000;
    hier.access(0, a, AccessType::Data, 0);
    const auto r = hier.access(0, a, AccessType::Data, 1);
    EXPECT_EQ(r.servedBy, ServedBy::L1);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, cfg.l1Latency);
}

TEST_F(HierarchyTest, InstrAndDataUseSeparateL1s)
{
    const Addr a = 0x2000;
    hier.access(0, a, AccessType::Data, 0);
    EXPECT_TRUE(hier.l1d(0).contains(a));
    EXPECT_FALSE(hier.l1i(0).contains(a));
    const auto r = hier.access(0, a, AccessType::Instr, 1);
    EXPECT_EQ(r.servedBy, ServedBy::L2); // L2 is unified
}

TEST_F(HierarchyTest, CrossCoreSharesOnlyLlc)
{
    const Addr a = 0x3000;
    hier.access(0, a, AccessType::Data, 0);
    const auto r = hier.access(1, a, AccessType::Data, 1);
    EXPECT_EQ(r.servedBy, ServedBy::Llc); // hits in the shared LLC
    EXPECT_TRUE(r.llcHit);
}

TEST_F(HierarchyTest, InvisibleAccessChangesNoState)
{
    const Addr a = 0x4000;
    const auto r = hier.accessInvisible(0, a, AccessType::Data, 0);
    EXPECT_EQ(r.servedBy, ServedBy::Mem);
    EXPECT_FALSE(hier.l1d(0).contains(a));
    EXPECT_FALSE(hier.llcContains(a));
    EXPECT_TRUE(hier.llcTrace().empty());
}

TEST_F(HierarchyTest, InvisibleAccessReportsCorrectLevel)
{
    const Addr a = 0x5000;
    hier.access(0, a, AccessType::Data, 0);
    hier.l1d(0).invalidate(a);
    hier.l2(0).invalidate(a);
    const auto r = hier.accessInvisible(0, a, AccessType::Data, 1);
    EXPECT_EQ(r.servedBy, ServedBy::Llc);
    EXPECT_TRUE(r.llcHit);
}

TEST_F(HierarchyTest, TraceRecordsOnlyLlcReachingAccesses)
{
    const Addr a = 0x6000;
    hier.access(0, a, AccessType::Data, 5); // cold: reaches LLC
    hier.access(0, a, AccessType::Data, 6); // L1 hit: no trace entry
    ASSERT_EQ(hier.llcTrace().size(), 1u);
    EXPECT_EQ(hier.llcTrace()[0].lineAddr, lineAlign(a));
    EXPECT_EQ(hier.llcTrace()[0].core, 0);
    EXPECT_EQ(hier.llcTrace()[0].when, 5u);
}

TEST_F(HierarchyTest, FlushRemovesLineEverywhere)
{
    const Addr a = 0x7000;
    hier.access(0, a, AccessType::Data, 0);
    hier.access(1, a, AccessType::Data, 0);
    hier.flushLine(a);
    EXPECT_FALSE(hier.l1d(0).contains(a));
    EXPECT_FALSE(hier.l1d(1).contains(a));
    EXPECT_FALSE(hier.l2(0).contains(a));
    EXPECT_FALSE(hier.llcContains(a));
}

TEST_F(HierarchyTest, DirectAccessTouchesOnlyLlc)
{
    const Addr a = 0x8000;
    const auto r1 = hier.accessDirect(1, a, 0);
    EXPECT_EQ(r1.servedBy, ServedBy::Mem);
    EXPECT_FALSE(hier.l1d(1).contains(a));
    EXPECT_TRUE(hier.llcContains(a));
    const auto r2 = hier.accessDirect(1, a, 1);
    EXPECT_EQ(r2.servedBy, ServedBy::Llc);
    EXPECT_LT(r2.latency, hier.llcHitThreshold());
    EXPECT_GE(r1.latency, hier.llcHitThreshold());
}

TEST_F(HierarchyTest, InclusiveLlcBackInvalidatesPrivateCopies)
{
    // Fill one LLC set completely from the attacker side and verify a
    // victim-private copy of the evicted line disappears.
    const Addr victim_line = 0x9000;
    hier.access(0, victim_line, AccessType::Data, 0);
    ASSERT_TRUE(hier.l1d(0).contains(victim_line));

    const unsigned set = hier.llcSetIndex(victim_line);
    const unsigned slice = hier.llcSliceIndex(victim_line);
    const unsigned ways = hier.config().llcSlice.ways;
    unsigned filled = 0;
    Addr cand = 0xA0000000;
    while (filled < 2 * ways) {
        if (hier.llcSetIndex(cand) == set &&
            hier.llcSliceIndex(cand) == slice) {
            hier.accessDirect(1, cand, 0);
            ++filled;
        }
        cand += kLineBytes;
    }
    EXPECT_FALSE(hier.llcContains(victim_line));
    EXPECT_FALSE(hier.l1d(0).contains(victim_line));
}

TEST_F(HierarchyTest, DeferredTouchReachesL1)
{
    const Addr a = 0xB000;
    hier.access(0, a, AccessType::Data, 0);
    // Smoke: the deferred-touch path must not disturb residency.
    hier.l1DeferredTouch(0, a, AccessType::Data);
    EXPECT_TRUE(hier.l1d(0).contains(a));
}

TEST_F(HierarchyTest, SliceIndexIsStableAndBounded)
{
    for (Addr a = 0; a < 0x100000; a += 0x1234) {
        const unsigned s = hier.llcSliceIndex(a);
        EXPECT_LT(s, cfg.llcSlices);
        EXPECT_EQ(s, hier.llcSliceIndex(a));
    }
}

// ---------------------------------------------------------------------
// HierarchyConfig::validate
// ---------------------------------------------------------------------

TEST(HierarchyConfigValidate, DefaultsAreValid)
{
    EXPECT_EQ(HierarchyConfig{}.validate(), "");
    EXPECT_EQ(HierarchyConfig::small().validate(), "");
    EXPECT_EQ(HierarchyConfig::kabyLake().validate(), "");
}

TEST(HierarchyConfigValidate, RejectsZeroCores)
{
    HierarchyConfig cfg;
    cfg.cores = 0;
    EXPECT_NE(cfg.validate().find("cores"), std::string::npos);
}

TEST(HierarchyConfigValidate, RejectsZeroGeometries)
{
    HierarchyConfig cfg;
    cfg.l1d.sets = 0;
    EXPECT_NE(cfg.validate().find("l1d"), std::string::npos);

    cfg = HierarchyConfig{};
    cfg.l2.ways = 0;
    EXPECT_NE(cfg.validate().find("l2"), std::string::npos);

    cfg = HierarchyConfig{};
    cfg.llcSlice.sets = 0;
    EXPECT_NE(cfg.validate().find("llc"), std::string::npos);
}

TEST(HierarchyConfigValidate, RejectsNonPowerOfTwoSliceCount)
{
    HierarchyConfig cfg;
    for (unsigned bad : {0u, 3u, 6u, 12u}) {
        cfg.llcSlices = bad;
        EXPECT_NE(cfg.validate().find("llcSlices"), std::string::npos)
            << bad;
    }
    for (unsigned good : {1u, 2u, 4u, 8u}) {
        cfg.llcSlices = good;
        EXPECT_EQ(cfg.validate(), "") << good;
    }
}

TEST(HierarchyConfigValidate, RejectsUnorderedLatencies)
{
    HierarchyConfig cfg;
    cfg.l2Latency = cfg.l1Latency; // l1 < l2 violated
    EXPECT_NE(cfg.validate().find("ordered"), std::string::npos);

    cfg = HierarchyConfig{};
    cfg.llcLatency = cfg.memLatency + 1;
    EXPECT_NE(cfg.validate().find("ordered"), std::string::npos);
}

TEST(HierarchyConfigValidate, RejectsBadPrefetchParams)
{
    HierarchyConfig cfg;
    cfg.prefetch.kind = PrefetchKind::NextLine;
    cfg.prefetch.degree = 0;
    EXPECT_NE(cfg.validate().find("degree"), std::string::npos);

    cfg = HierarchyConfig{};
    cfg.prefetch.kind = PrefetchKind::Stride;
    cfg.prefetch.streamTableSize = 0;
    EXPECT_NE(cfg.validate().find("streamTableSize"),
              std::string::npos);
}

TEST(HierarchyConfigValidateDeathTest, ConstructorFatalsOnBadConfig)
{
    HierarchyConfig cfg;
    cfg.llcSlices = 3;
    EXPECT_EXIT(Hierarchy{cfg}, ::testing::ExitedWithCode(1),
                "HierarchyConfig: llcSlices");
}

TEST_F(HierarchyTest, MainMemoryReadsBackWrites)
{
    MainMemory mem;
    EXPECT_EQ(mem.read(0x100), 0u);
    mem.write(0x100, 42);
    EXPECT_EQ(mem.read(0x100), 42u);
    EXPECT_EQ(mem.read(0x104), 42u); // same word
    mem.write(0x108, 7);
    EXPECT_EQ(mem.read(0x108), 7u);
}

} // namespace
} // namespace specint
