/**
 * @file
 * Sender/gadget builder tests: structural properties every sender must
 * satisfy for the receivers to work (congruence of monitored lines,
 * isolation of auxiliary data from the monitored set, label presence,
 * gadget placement on the wrong path).
 */

#include <cctype>

#include <gtest/gtest.h>

#include "attack/gadget.hh"
#include "attack/matrix.hh"

namespace specint
{
namespace
{

class SenderBuild
    : public ::testing::TestWithParam<
          std::pair<GadgetKind, OrderingKind>>
{
  protected:
    SenderBuild() : hier(HierarchyConfig::small()) {}
    Hierarchy hier;
};

TEST_P(SenderBuild, StructurallySound)
{
    const auto [g, o] = GetParam();
    SenderParams params;
    params.gadget = g;
    params.ordering = o;
    const SenderProgram sp = buildSender(params, hier);

    // Program sanity.
    ASSERT_GT(sp.prog.size(), 4u);
    ASSERT_LT(sp.branchPc, sp.prog.size());
    EXPECT_TRUE(sp.prog.at(sp.branchPc).isBranch());
    EXPECT_GE(sp.prog.findLabel("access"), 0);
    EXPECT_NE(sp.secretSlot, kAddrInvalid);

    // The gadget (access load) must be on the branch's taken path and
    // after the branch in fetch order.
    const unsigned target = sp.prog.at(sp.branchPc).target;
    EXPECT_GT(target, sp.branchPc);
    EXPECT_EQ(static_cast<unsigned>(sp.prog.findLabel("access")),
              target);

    // Monitored lines must be congruent (same LLC set and slice).
    const Addr first =
        (o == OrderingKind::VdVi || o == OrderingKind::ViAd ||
         o == OrderingKind::Presence)
            ? sp.icacheTarget
            : sp.addrA;
    ASSERT_NE(first, kAddrInvalid);
    const Addr second = sp.monitorSecond();
    if (second != kAddrInvalid) {
        EXPECT_EQ(hier.llcSetIndex(first), hier.llcSetIndex(second));
        EXPECT_EQ(hier.llcSliceIndex(first),
                  hier.llcSliceIndex(second));
        EXPECT_NE(lineAlign(first), lineAlign(second));
    }

    // No auxiliary (warm/flush/LLC-warm) line may pollute the
    // monitored set, except the monitored lines themselves.
    auto polluting = [&](Addr a) {
        return a != lineAlign(first) && second != kAddrInvalid &&
               a != lineAlign(second) &&
               hier.llcSetIndex(a) == hier.llcSetIndex(first) &&
               hier.llcSliceIndex(a) == hier.llcSliceIndex(first);
    };
    for (Addr a : sp.warmLines)
        EXPECT_FALSE(polluting(lineAlign(a))) << std::hex << a;
    for (Addr a : sp.flushLines)
        EXPECT_FALSE(polluting(lineAlign(a))) << std::hex << a;

    // Monitored I-lines must not be pre-warmed.
    if (sp.icacheTarget != kAddrInvalid) {
        for (Addr a : sp.warmCodeLines)
            EXPECT_NE(a, sp.icacheTarget);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SenderBuild,
    ::testing::ValuesIn(tableOneCombos()),
    [](const auto &info) {
        std::string n = gadgetName(info.param.first) + "_" +
                        orderingName(info.param.second);
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(SenderBuildDetails, NpeuGadgetUsesNonPipelinedChain)
{
    Hierarchy hier(HierarchyConfig::small());
    SenderParams p;
    p.gadget = GadgetKind::Npeu;
    p.ordering = OrderingKind::VdVd;
    const SenderProgram sp = buildSender(p, hier);
    EXPECT_GE(sp.prog.findLabel("fp1"), 0);
    EXPECT_GE(sp.prog.findLabel("f1"), 0);
    EXPECT_GE(sp.prog.findLabel("loadA"), 0);
    EXPECT_GE(sp.prog.findLabel("loadB"), 0);
    // The B load's displacement was patched to the congruent address.
    const auto &ldb = sp.prog.at(
        static_cast<unsigned>(sp.prog.findLabel("loadB")));
    EXPECT_EQ(static_cast<Addr>(ldb.imm), sp.addrB);
}

TEST(SenderBuildDetails, MshrGadgetHasOneLoadPerMshr)
{
    Hierarchy hier(HierarchyConfig::small());
    SenderParams p;
    p.gadget = GadgetKind::Mshr;
    p.ordering = OrderingKind::VdAd;
    p.mshrLoads = 10;
    const SenderProgram sp = buildSender(p, hier);
    unsigned gadget_loads = 0;
    for (const auto &si : sp.prog.code())
        if (si.label.rfind("gml", 0) == 0)
            ++gadget_loads;
    EXPECT_EQ(gadget_loads, 10u);
    // All candidate lines must be pre-staged in the LLC.
    EXPECT_GE(sp.llcWarmLines.size(), 10u);
}

TEST(SenderBuildDetails, RsGadgetFillsReservationStations)
{
    Hierarchy hier(HierarchyConfig::small());
    SenderParams p;
    p.gadget = GadgetKind::Rs;
    p.ordering = OrderingKind::Presence;
    p.rsAdds = 160;
    const SenderProgram sp = buildSender(p, hier);
    EXPECT_GE(sp.prog.findLabel("target_instr"), 0);
    EXPECT_NE(sp.icacheTarget, kAddrInvalid);
    // The target must sit far enough downstream that a full RS (97) +
    // decode queue cannot reach it.
    const unsigned target_pc =
        static_cast<unsigned>(sp.prog.findLabel("target_instr"));
    const unsigned gadget_pc = sp.prog.at(sp.branchPc).target;
    EXPECT_GT(target_pc - gadget_pc, 97u + 24u + 8u);
}

TEST(SenderBuildDetails, ViMarkerLineIsCongruentWithReference)
{
    Hierarchy hier(HierarchyConfig::small());
    SenderParams p;
    p.gadget = GadgetKind::Npeu;
    p.ordering = OrderingKind::ViAd;
    const SenderProgram sp = buildSender(p, hier);
    ASSERT_NE(sp.icacheTarget, kAddrInvalid);
    ASSERT_NE(sp.refAddr, kAddrInvalid);
    EXPECT_EQ(hier.llcSetIndex(sp.icacheTarget),
              hier.llcSetIndex(sp.refAddr));
    // The gadget must start on a different I-line than the monitored
    // fall-through marker.
    const unsigned gadget_pc = sp.prog.at(sp.branchPc).target;
    EXPECT_NE(sp.prog.instLine(gadget_pc), sp.icacheTarget);
}

} // namespace
} // namespace specint
