/**
 * @file
 * Speculation-scheme semantics tests: each defense's load policy,
 * exposure behaviour, I-fetch protection, and the factory plumbing.
 * The headline property — classic Spectre v1 is blocked by every
 * invisible-speculation scheme — is checked for all schemes with a
 * parameterised suite.
 */

#include <cctype>

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "memory/hierarchy.hh"
#include "spec/advanced.hh"
#include "spec/muontrap.hh"

namespace specint
{
namespace
{

/** Spectre v1 victim with a slow-resolving bounds check. */
struct SpectreV1
{
    Program prog;
    unsigned branchPc = 0;
    Addr transmitBase = 0x700000;

    SpectreV1()
    {
        prog.movi(1, 5);               // i = 5 (out of bounds)
        prog.load(2, kNoReg, 0x6000);  // N via cold pointer chase
        prog.load(2, 2, 0);
        branchPc = prog.branch(BranchCond::LT, 1, 2, 0);
        prog.halt();                   // correct path
        const unsigned wrong =
            prog.load(3, kNoReg, 0x5000, 1, "secret");
        prog.load(4, 3, static_cast<std::int64_t>(transmitBase), 64,
                  "transmit");
        prog.halt();
        prog.setBranchTarget(branchPc, wrong);
    }

    void setup(Hierarchy &hier, MainMemory &mem, Core &core) const
    {
        mem.write(0x5000, 1); // secret bit = 1
        mem.write(0x6000, 0x6100);
        mem.write(0x6100, 2);
        hier.flushLine(0x6000);
        hier.flushLine(0x6100);
        hier.flushLine(transmitBase);
        hier.flushLine(transmitBase + 64);
        hier.access(core.id(), 0x5000, AccessType::Data, 0);
        core.predictor().train(branchPc, true, 4);
    }

    bool leaked(const Hierarchy &hier) const
    {
        return hier.llcContains(transmitBase + 64) ||
               hier.llcContains(transmitBase);
    }
};

class SpectreBlocked : public ::testing::TestWithParam<SchemeKind>
{};

TEST_P(SpectreBlocked, TransmitLineNeverReachesLlc)
{
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    Core core(CoreConfig{}, 0, hier, mem);
    core.setScheme(makeScheme(GetParam()));

    SpectreV1 victim;
    victim.setup(hier, mem, core);
    const CoreStats s = core.run(victim.prog);
    EXPECT_TRUE(s.finished);
    EXPECT_GE(s.squashes, 1u);
    EXPECT_FALSE(victim.leaked(hier))
        << "scheme " << schemeName(GetParam())
        << " let the transient transmit load change LLC state";
}

INSTANTIATE_TEST_SUITE_P(
    AllDefenses, SpectreBlocked,
    ::testing::Values(SchemeKind::DomNonTso, SchemeKind::DomTso,
                      SchemeKind::InvisiSpecSpectre,
                      SchemeKind::InvisiSpecFuturistic,
                      SchemeKind::SafeSpecWfb, SchemeKind::SafeSpecWfc,
                      SchemeKind::MuonTrap, SchemeKind::ConditionalSpec,
                      SchemeKind::FenceSpectre,
                      SchemeKind::FenceFuturistic,
                      SchemeKind::AdvancedDefense),
    [](const auto &info) {
        std::string n = schemeName(info.param);
        for (char &c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(SpectreV1Baseline, UnsafeLeaks)
{
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    Core core(CoreConfig{}, 0, hier, mem);
    core.setScheme(makeScheme(SchemeKind::Unsafe));
    SpectreV1 victim;
    victim.setup(hier, mem, core);
    core.run(victim.prog);
    EXPECT_TRUE(hier.llcContains(victim.transmitBase + 64));
    EXPECT_FALSE(hier.llcContains(victim.transmitBase));
}

TEST(Dom, SpeculativeHitForwardsWithoutLlcTraffic)
{
    // A speculative L1 hit under DoM returns data without any visible
    // LLC access; after the squash nothing changed.
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    Core core(CoreConfig{}, 0, hier, mem);
    core.setScheme(makeScheme(SchemeKind::DomNonTso));

    mem.write(0x5000, 42);
    mem.write(0x6000, 0x6100);
    mem.write(0x6100, 2);
    Program p;
    p.movi(1, 5);
    p.load(2, kNoReg, 0x6000);
    p.load(2, 2, 0);
    const unsigned br = p.branch(BranchCond::LT, 1, 2, 0);
    p.halt();
    const unsigned wrong = p.load(3, kNoReg, 0x5000, 1, "spechit");
    p.alu(4, 3, kNoReg, 0);
    p.halt();
    p.setBranchTarget(br, wrong);

    hier.access(0, 0x5000, AccessType::Data, 0); // L1-resident
    hier.flushLine(0x6000);
    hier.flushLine(0x6100);
    hier.clearLlcTrace();
    core.predictor().train(br, true, 4);
    const CoreStats s = core.run(p);
    EXPECT_TRUE(s.finished);
    EXPECT_GE(s.squashes, 1u);
    for (const auto &acc : hier.llcTrace())
        EXPECT_NE(acc.lineAddr, lineAlign(Addr{0x5000}));
}

TEST(Dom, SpeculativeMissIsNeverServiced)
{
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    Core core(CoreConfig{}, 0, hier, mem);
    core.setScheme(makeScheme(SchemeKind::DomNonTso));
    SpectreV1 victim;
    victim.setup(hier, mem, core);
    core.run(victim.prog);
    EXPECT_FALSE(hier.llcContains(victim.transmitBase + 64));
    EXPECT_FALSE(hier.l1d(0).contains(victim.transmitBase + 64));
}

TEST(InvisiSpec, CorrectPathSpeculativeLoadIsExposed)
{
    // A load that starts speculative but whose shadow resolves in the
    // correct direction must eventually update the cache (exposure).
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    Core core(CoreConfig{}, 0, hier, mem);
    core.setScheme(makeScheme(SchemeKind::InvisiSpecSpectre));

    mem.write(0x6000, 0x6100);
    mem.write(0x6100, 10);
    Program p;
    p.movi(1, 5);
    p.load(2, kNoReg, 0x6000);
    p.load(2, 2, 0);
    const unsigned br = p.branch(BranchCond::LT, 1, 2, 0); // 5<10 taken
    p.halt();
    const unsigned tgt = p.load(3, kNoReg, 0x8000, 1, "specload");
    p.halt();
    p.setBranchTarget(br, tgt);
    core.predictor().train(br, true, 4); // predicted taken, IS taken
    hier.flushLine(0x6000);
    hier.flushLine(0x6100);
    hier.flushLine(0x8000);
    const CoreStats s = core.run(p);
    EXPECT_TRUE(s.finished);
    EXPECT_EQ(s.squashes, 0u);
    EXPECT_TRUE(hier.llcContains(0x8000)); // exposed after resolve
    EXPECT_EQ(core.archReg(3), 0u);
}

TEST(MuonTrap, FilterCacheSemantics)
{
    MuonTrapScheme mt(4);
    EXPECT_FALSE(mt.filterProbe(0x100));
    mt.filterFill(0x100, 10);
    EXPECT_TRUE(mt.filterProbe(0x100));
    mt.filterFill(0x140, 11);
    mt.filterFill(0x180, 12);
    mt.filterFill(0x1c0, 13);
    mt.filterFill(0x200, 14); // FIFO capacity 4: evicts 0x100
    EXPECT_FALSE(mt.filterProbe(0x100));
    mt.filterSquashYoungerThan(12);
    EXPECT_TRUE(mt.filterProbe(0x180));
    EXPECT_FALSE(mt.filterProbe(0x200));
    mt.reset();
    EXPECT_FALSE(mt.filterProbe(0x180));
}

TEST(FenceDefense, BlocksIssueUnderShadow)
{
    IssueContext under_branch;
    under_branch.olderUnresolvedBranch = true;
    IssueContext under_load;
    under_load.olderIncompleteLoad = true;
    IssueContext clear;

    const auto spectre = makeScheme(SchemeKind::FenceSpectre);
    EXPECT_FALSE(spectre->mayIssue(under_branch));
    EXPECT_TRUE(spectre->mayIssue(under_load));
    EXPECT_TRUE(spectre->mayIssue(clear));

    const auto fut = makeScheme(SchemeKind::FenceFuturistic);
    EXPECT_FALSE(fut->mayIssue(under_branch));
    EXPECT_FALSE(fut->mayIssue(under_load));
    EXPECT_TRUE(fut->mayIssue(clear));
}

TEST(AdvancedDefense, FlagsReflectRules)
{
    AdvancedDefenseScheme all;
    EXPECT_TRUE(all.schedFlags().strictAgePriority);
    EXPECT_TRUE(all.schedFlags().holdRsUntilRetire);
    EXPECT_TRUE(all.schedFlags().preemptSpecMshr);

    AdvancedDefenseScheme none({false, false, false});
    EXPECT_FALSE(none.schedFlags().strictAgePriority);
    EXPECT_FALSE(none.schedFlags().holdRsUntilRetire);
    EXPECT_FALSE(none.schedFlags().preemptSpecMshr);
}

TEST(SchemeFactory, NamesAndProperties)
{
    for (SchemeKind k : allSchemes()) {
        const SchemePtr s = makeScheme(k);
        EXPECT_FALSE(s->name().empty());
    }
    EXPECT_TRUE(makeScheme(SchemeKind::SafeSpecWfb)->protectsIFetch());
    EXPECT_TRUE(makeScheme(SchemeKind::MuonTrap)->protectsIFetch());
    EXPECT_FALSE(
        makeScheme(SchemeKind::InvisiSpecSpectre)->protectsIFetch());
    EXPECT_FALSE(makeScheme(SchemeKind::DomNonTso)->protectsIFetch());
    EXPECT_EQ(attackedSchemes().size(), 8u);
    EXPECT_EQ(allSchemes().size(), 12u);
}

} // namespace
} // namespace specint
