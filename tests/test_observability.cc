/**
 * @file
 * Observability layer tests: metric registry semantics (path
 * uniqueness, kind conflicts, snapshot/diff), event tracer ring and
 * rendering (schema shape, determinism across --jobs), host profiler,
 * log-level parsing, and the off-by-default guarantees (no events, no
 * metrics, no perturbation of simulation results).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "cpu/core.hh"
#include "memory/hierarchy.hh"
#include "sim/experiment/report.hh"
#include "sim/experiment/runner.hh"
#include "sim/log.hh"
#include "sim/obs/metrics.hh"
#include "sim/obs/profile.hh"
#include "sim/obs/trace.hh"

namespace specint
{
namespace
{

using experiment::ExperimentRunner;
using experiment::PointContext;
using experiment::PointResult;
using experiment::Report;
using experiment::RunOptions;
using experiment::Scenario;
using experiment::SweepSpec;

/** Every test leaves the global observability switches off and the
 *  global sinks empty, so suites cannot perturb each other. */
class ObservabilityTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        obs::setMetricsEnabled(false);
        obs::EventTracer::global().setEnabled(false);
        obs::setProfilingEnabled(false);
        obs::MetricRegistry::global().clear();
        obs::EventTracer::global().clear();
        obs::HostProfiler::global().clear();
        obs::setTraceProcess(0);
    }
};

// ---------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------

TEST_F(ObservabilityTest, DeclareIsIdempotentPerKind)
{
    obs::MetricRegistry reg;
    EXPECT_TRUE(reg.declare("core0.retired", obs::MetricKind::Counter));
    EXPECT_FALSE(reg.declare("core0.retired", obs::MetricKind::Counter));
    EXPECT_EQ(reg.size(), 1u);
}

TEST_F(ObservabilityTest, KindConflictThrows)
{
    obs::MetricRegistry reg;
    reg.declare("llc.occupancy", obs::MetricKind::Distribution);
    EXPECT_THROW(reg.counterAdd("llc.occupancy"), std::logic_error);
    EXPECT_THROW(reg.gaugeSet("llc.occupancy", 1.0), std::logic_error);
    EXPECT_THROW(reg.declare("llc.occupancy", obs::MetricKind::Gauge),
                 std::logic_error);
    // The original registration is untouched by the failed mutations.
    reg.sampleAdd("llc.occupancy", 3.0);
    const obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_NE(snap.find("llc.occupancy"), nullptr);
    EXPECT_EQ(snap.find("llc.occupancy")->count, 1u);
}

TEST_F(ObservabilityTest, SnapshotSortedAndComplete)
{
    obs::MetricRegistry reg;
    reg.counterAdd("b.counter", 7);
    reg.gaugeSet("a.gauge", 2.5);
    reg.sampleAdd("c.dist", 1.0);
    reg.sampleAdd("c.dist", 3.0);

    const obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.entries.size(), 3u);
    EXPECT_EQ(snap.entries[0].path, "a.gauge");
    EXPECT_EQ(snap.entries[1].path, "b.counter");
    EXPECT_EQ(snap.entries[2].path, "c.dist");
    EXPECT_DOUBLE_EQ(snap.entries[0].value, 2.5);
    EXPECT_EQ(snap.entries[1].count, 7u);
    EXPECT_EQ(snap.entries[2].count, 2u);
    EXPECT_DOUBLE_EQ(snap.entries[2].mean, 2.0);
    EXPECT_DOUBLE_EQ(snap.entries[2].min, 1.0);
    EXPECT_DOUBLE_EQ(snap.entries[2].max, 3.0);
    EXPECT_EQ(snap.find("nope"), nullptr);
}

TEST_F(ObservabilityTest, SnapshotDiffReportsChangesOnly)
{
    obs::MetricRegistry reg;
    reg.counterAdd("stable", 5);
    reg.counterAdd("grows", 1);
    const obs::MetricsSnapshot before = reg.snapshot();

    reg.counterAdd("grows", 3);
    reg.counterAdd("fresh", 2);
    const obs::MetricsSnapshot after = reg.snapshot();

    const auto deltas = obs::MetricsSnapshot::diff(before, after);
    ASSERT_EQ(deltas.size(), 2u);
    EXPECT_EQ(deltas[0].path, "fresh");
    EXPECT_TRUE(deltas[0].added);
    EXPECT_DOUBLE_EQ(deltas[0].delta, 2.0);
    EXPECT_EQ(deltas[1].path, "grows");
    EXPECT_FALSE(deltas[1].added);
    EXPECT_DOUBLE_EQ(deltas[1].delta, 3.0);
}

TEST_F(ObservabilityTest, RenderersIncludeEveryPath)
{
    obs::MetricRegistry reg;
    reg.counterAdd("x.count", 4);
    reg.sampleAdd("y.dist", 2.0);
    const obs::MetricsSnapshot snap = reg.snapshot();

    const std::string json = snap.renderJson();
    EXPECT_NE(json.find("\"x.count\""), std::string::npos);
    EXPECT_NE(json.find("\"y.dist\""), std::string::npos);
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);

    const std::string csv = snap.renderCsv();
    EXPECT_EQ(csv.find("path,kind,count"), 0u);
    EXPECT_NE(csv.find("x.count,counter,4"), std::string::npos);
}

// ---------------------------------------------------------------------
// EventTracer
// ---------------------------------------------------------------------

TEST_F(ObservabilityTest, DisabledTracerRecordsNothing)
{
    obs::EventTracer tracer;
    const std::uint32_t t = tracer.track("core0.t0");
    tracer.complete(t, "inst", "pipeline", 0, 5);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.emitted(), 0u);
}

TEST_F(ObservabilityTest, RingOverwritesOldestAndCounts)
{
    obs::EventTracer tracer(/*capacity=*/4);
    tracer.setEnabled(true);
    const std::uint32_t t = tracer.track("a");
    for (std::uint64_t i = 0; i < 6; ++i)
        tracer.instant(t, "e", "c", i);
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 2u);
    EXPECT_EQ(tracer.emitted(), 6u);
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest-first: timestamps 2..5 survive.
    EXPECT_EQ(events.front().ts, 2u);
    EXPECT_EQ(events.back().ts, 5u);
}

TEST_F(ObservabilityTest, RenderJsonHasTraceEventSchema)
{
    obs::EventTracer tracer;
    tracer.setEnabled(true);
    const std::uint32_t t0 = tracer.track("core0.t0");
    const std::uint32_t t1 = tracer.track("core0.mem");
    tracer.complete(t0, "inst", "pipeline", 10, 3, "pc", 7);
    tracer.instant(t1, "squash", "pipeline", 12, "seq", 9);

    const std::string json = tracer.renderJson();
    EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
    // Metadata records name the process and both tracks.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("core0.t0"), std::string::npos);
    EXPECT_NE(json.find("core0.mem"), std::string::npos);
    // Event records carry phase, timestamp and args; instants scope.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":3"), std::string::npos);
    EXPECT_NE(json.find("\"pc\":7"), std::string::npos);
}

/** A scenario whose points emit synthetic trace events and metrics:
 *  determinism across worker counts is a property of the obs layer,
 *  not of any particular simulation. */
Scenario
syntheticObsScenario()
{
    Scenario sc;
    sc.name = "obs-synthetic";
    sc.columns = {"point"};
    sc.sweep = [](const RunOptions &) {
        return SweepSpec().axis(
            "p", {"0", "1", "2", "3", "4", "5", "6", "7"});
    };
    sc.run = [](const PointContext &ctx, const RunOptions &) {
        obs::EventTracer &tracer = obs::EventTracer::global();
        // Same track names from every point: interning order is racy
        // across workers, which is exactly what rendering must hide.
        const std::uint32_t trk =
            tracer.track("t" + std::to_string(ctx.pointIndex % 3));
        for (unsigned i = 0; i < 5; ++i) {
            tracer.complete(trk, "work", "synthetic",
                            10 * i + ctx.pointIndex, 4, "i", i);
        }
        obs::MetricRegistry::global().counterAdd(
            "synthetic.events", 5);
        obs::MetricRegistry::global().sampleAdd(
            "synthetic.point", static_cast<double>(ctx.pointIndex));
        PointResult res;
        res.rows.push_back({experiment::Value::str(ctx.point.at("p"))});
        return res;
    };
    return sc;
}

TEST_F(ObservabilityTest, TraceAndMetricsDeterministicAcrossJobs)
{
    const Scenario sc = syntheticObsScenario();

    auto render = [&](unsigned jobs) {
        obs::MetricRegistry::global().clear();
        obs::EventTracer::global().clear();
        obs::setMetricsEnabled(true);
        obs::EventTracer::global().setEnabled(true);
        RunOptions options;
        options.jobs = jobs;
        const ExperimentRunner runner(jobs);
        (void)runner.run(sc, options);
        obs::EventTracer::global().setEnabled(false);
        obs::setMetricsEnabled(false);
        return std::make_pair(
            obs::EventTracer::global().renderJson(),
            obs::MetricRegistry::global().snapshot().renderJson());
    };

    const auto serial = render(1);
    const auto parallel = render(4);
    EXPECT_EQ(serial.first, parallel.first);
    EXPECT_EQ(serial.second, parallel.second);
}

// ---------------------------------------------------------------------
// Simulation auto-publication
// ---------------------------------------------------------------------

CoreConfig
tinyCoreConfig()
{
    CoreConfig cfg;
    cfg.maxCycles = 200000;
    return cfg;
}

Program
tinyProgram()
{
    Program p;
    p.movi(1, 5);
    p.alu(2, 1, 1, 2);
    p.load(3, kNoReg, 0x1000);
    p.halt();
    return p;
}

TEST_F(ObservabilityTest, CoreRunPublishesMetricsWhenEnabled)
{
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    Core core(tinyCoreConfig(), 0, hier, mem);

    obs::MetricRegistry::global().clear();
    obs::setMetricsEnabled(true);
    core.run(tinyProgram());
    obs::setMetricsEnabled(false);

    const obs::MetricsSnapshot snap =
        obs::MetricRegistry::global().snapshot();
    const obs::MetricSample *retired = snap.find("core0.t0.retired");
    ASSERT_NE(retired, nullptr);
    EXPECT_GE(retired->count, 4u);
    EXPECT_NE(snap.find("core0.pipeline.cycles"), nullptr);
    EXPECT_NE(snap.find("core0.t0.loads"), nullptr);
    EXPECT_NE(snap.find("llc.visible_accesses"), nullptr);
}

TEST_F(ObservabilityTest, CoreRunEmitsTraceEventsWhenEnabled)
{
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    Core core(tinyCoreConfig(), 0, hier, mem);

    obs::EventTracer::global().clear();
    obs::EventTracer::global().setEnabled(true);
    core.run(tinyProgram());
    obs::EventTracer::global().setEnabled(false);

    const std::string json = obs::EventTracer::global().renderJson();
    EXPECT_GT(obs::EventTracer::global().size(), 0u);
    EXPECT_NE(json.find("core0.t0"), std::string::npos);
    EXPECT_NE(json.find("core0.mem"), std::string::npos);
    EXPECT_NE(json.find("\"inst\""), std::string::npos);
}

TEST_F(ObservabilityTest, StatsLiteElidesTraceEvents)
{
    HierarchyConfig hcfg = HierarchyConfig::small();
    hcfg.statsLite = true;
    Hierarchy hier(hcfg);
    MainMemory mem;
    CoreConfig ccfg = tinyCoreConfig();
    ccfg.statsLite = true;
    Core core(ccfg, 0, hier, mem);

    obs::EventTracer::global().clear();
    obs::EventTracer::global().setEnabled(true);
    core.run(tinyProgram());
    obs::EventTracer::global().setEnabled(false);

    // statsLite elides the tracer's event sources exactly as it elides
    // the instruction/LLC traces; the run stays raw-speed.
    EXPECT_EQ(obs::EventTracer::global().size(), 0u);
}

TEST_F(ObservabilityTest, ObservabilityOffLeavesSinksEmpty)
{
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    Core core(tinyCoreConfig(), 0, hier, mem);

    obs::MetricRegistry::global().clear();
    obs::EventTracer::global().clear();
    const CoreStats stats = core.run(tinyProgram());
    EXPECT_TRUE(stats.finished);
    EXPECT_EQ(obs::MetricRegistry::global().size(), 0u);
    EXPECT_EQ(obs::EventTracer::global().size(), 0u);
}

TEST_F(ObservabilityTest, MetricsAccumulateAcrossRunsWithoutDoubleCount)
{
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    Core core(tinyCoreConfig(), 0, hier, mem);

    obs::MetricRegistry::global().clear();
    obs::setMetricsEnabled(true);
    core.run(tinyProgram());
    const obs::MetricsSnapshot first =
        obs::MetricRegistry::global().snapshot();
    core.run(tinyProgram());
    const obs::MetricsSnapshot second =
        obs::MetricRegistry::global().snapshot();
    obs::setMetricsEnabled(false);

    // Hierarchy-side counters are cumulative on the Hierarchy object:
    // delta publication must add each access once, never re-add the
    // running total. The second (warm-cache) run reaches the LLC at
    // most as often as the cold one, so a re-add of the cumulative
    // count would at least double the metric.
    const obs::MetricSample *llc1 = first.find("llc.visible_accesses");
    const obs::MetricSample *llc2 = second.find("llc.visible_accesses");
    ASSERT_NE(llc1, nullptr);
    ASSERT_NE(llc2, nullptr);
    EXPECT_GT(llc1->count, 0u);
    EXPECT_GE(llc2->count, llc1->count);
    EXPECT_LT(llc2->count, 2 * llc1->count);

    // ThreadStats reset every run: identical runs add identical deltas.
    const obs::MetricSample *ret1 = first.find("core0.t0.retired");
    const obs::MetricSample *ret2 = second.find("core0.t0.retired");
    ASSERT_NE(ret1, nullptr);
    ASSERT_NE(ret2, nullptr);
    EXPECT_EQ(ret2->count, 2 * ret1->count);
}

// ---------------------------------------------------------------------
// HostProfiler
// ---------------------------------------------------------------------

TEST_F(ObservabilityTest, ScopedTimerOnlyRecordsWhenEnabled)
{
    obs::HostProfiler::global().clear();
    {
        const obs::ScopedTimer timer("off.phase");
    }
    EXPECT_TRUE(obs::HostProfiler::global().phases().empty());

    obs::setProfilingEnabled(true);
    {
        const obs::ScopedTimer timer("on.phase");
    }
    {
        const obs::ScopedTimer timer("on.phase");
    }
    obs::setProfilingEnabled(false);

    const auto phases = obs::HostProfiler::global().phases();
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases[0].name, "on.phase");
    EXPECT_EQ(phases[0].count, 2u);
}

TEST_F(ObservabilityTest, ReportProfileRendering)
{
    Report report;
    report.scenario = "demo";
    EXPECT_EQ(report.renderProfile(), "");
    EXPECT_EQ(report.renderJson().find("\"profile\""),
              std::string::npos);

    report.profile.push_back({"phase.a", 2, 1500});
    const std::string text = report.renderProfile();
    EXPECT_NE(text.find("[profile] demo"), std::string::npos);
    EXPECT_NE(text.find("phase.a"), std::string::npos);
    EXPECT_NE(report.renderJson().find("\"profile\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Log level plumbing
// ---------------------------------------------------------------------

TEST_F(ObservabilityTest, LogLevelParsing)
{
    LogLevel level = LogLevel::Silent;
    EXPECT_TRUE(logLevelFromString("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(logLevelFromString("0", level));
    EXPECT_EQ(level, LogLevel::Silent);
    EXPECT_TRUE(logLevelFromString("4", level));
    EXPECT_EQ(level, LogLevel::Trace);
    EXPECT_FALSE(logLevelFromString("loud", level));
    EXPECT_FALSE(logLevelFromString("", level));
    EXPECT_FALSE(logLevelFromString("5", level));
    EXPECT_EQ(level, LogLevel::Trace); // untouched on failure
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
}

} // namespace
} // namespace specint
