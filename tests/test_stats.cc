/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace specint
{
namespace
{

TEST(SampleStat, MeanStddevMinMax)
{
    SampleStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleStat, Percentiles)
{
    SampleStat s;
    for (int i = 1; i <= 100; ++i)
        s.add(i);
    EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-9);
    EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-9);
    EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
}

TEST(SampleStat, EmptyStatIsDefined)
{
    // Every accessor must return a defined value (not NaN / UB) on a
    // stat nothing was added to: registry snapshots render whatever
    // state a distribution is in.
    const SampleStat s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 0.0);
}

TEST(SampleStat, SingleSampleIsItsOwnPercentile)
{
    SampleStat s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 7.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 7.0);
}

TEST(SampleStat, PercentileWithoutKeptSamplesIsZero)
{
    SampleStat s(/*keep_samples=*/false);
    s.add(3.0);
    s.add(5.0);
    // No retained distribution to index: defined zero, not UB.
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST(SampleStat, PercentileClampsQuantile)
{
    SampleStat s;
    s.add(1.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.percentile(-0.5), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(2.0), 2.0);
}

TEST(SampleStat, ResetClears)
{
    SampleStat s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndMode)
{
    Histogram h(10);
    for (std::uint64_t x : {3, 5, 12, 15, 17, 18, 25})
        h.add(x);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.buckets().at(0), 2u);
    EXPECT_EQ(h.buckets().at(10), 4u);
    EXPECT_EQ(h.buckets().at(20), 1u);
    EXPECT_EQ(h.modeBucket(), 10u);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(1);
    h.add(5);
    h.add(5);
    const std::string out = h.render("demo", 10);
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(TextTable, RendersAlignedRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(FmtDouble, Precision)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(2.0, 1), "2.0");
}

} // namespace
} // namespace specint
