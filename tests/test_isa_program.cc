/**
 * @file
 * ISA trait and Program builder tests.
 */

#include <gtest/gtest.h>

#include "cpu/isa.hh"
#include "cpu/program.hh"

namespace specint
{
namespace
{

TEST(OpTraits, NonPipelinedFpOpsOnPortZero)
{
    const auto &sqrt = opTraits(Op::FpSqrt);
    EXPECT_FALSE(sqrt.pipelined);
    ASSERT_FALSE(sqrt.ports.empty());
    EXPECT_EQ(sqrt.ports[0], 0);
    EXPECT_GE(sqrt.latency, 10u);

    const auto &div = opTraits(Op::FpDiv);
    EXPECT_FALSE(div.pipelined);
    EXPECT_EQ(div.ports[0], 0);
}

TEST(OpTraits, LoadsUseLoadPorts)
{
    const auto &ld = opTraits(Op::Load);
    EXPECT_EQ(ld.ports.size(), 2u);
    EXPECT_EQ(ld.ports[0], 2);
    EXPECT_EQ(ld.ports[1], 3);
}

TEST(OpTraits, AluAvoidsPortZeroFirst)
{
    const auto &alu = opTraits(Op::IntAlu);
    EXPECT_NE(alu.ports[0], 0);
    EXPECT_TRUE(alu.pipelined);
}

TEST(EvalCond, AllConditions)
{
    EXPECT_TRUE(evalCond(BranchCond::LT, 1, 2));
    EXPECT_FALSE(evalCond(BranchCond::LT, 2, 2));
    EXPECT_TRUE(evalCond(BranchCond::GE, 2, 2));
    EXPECT_TRUE(evalCond(BranchCond::EQ, 3, 3));
    EXPECT_TRUE(evalCond(BranchCond::NE, 3, 4));
}

TEST(Program, BuilderProducesLabeledInstructions)
{
    Program p;
    p.movi(1, 42);
    p.load(2, 1, 0x1000, 1, "theload");
    p.sqrt(3, 2, "thesqrt");
    const unsigned br = p.branch(BranchCond::LT, 1, 2, 0, "br");
    p.halt();
    p.setBranchTarget(br, 4);

    EXPECT_EQ(p.size(), 5u);
    EXPECT_EQ(p.findLabel("theload"), 1);
    EXPECT_EQ(p.findLabel("missing"), -1);
    EXPECT_EQ(p.at(3).target, 4u);
    EXPECT_TRUE(p.at(1).isLoad());
    EXPECT_TRUE(p.at(3).isBranch());
}

TEST(Program, InstAddressesAreFourBytesApart)
{
    Program p(0x400000);
    p.nop();
    p.nop();
    EXPECT_EQ(p.instAddr(0), 0x400000u);
    EXPECT_EQ(p.instAddr(1), 0x400004u);
    EXPECT_EQ(p.instLine(0), p.instLine(1));
    EXPECT_EQ(p.instLine(16), 0x400040u);
}

TEST(Program, InitialRegisters)
{
    Program p;
    p.setReg(5, 123);
    EXPECT_EQ(p.initRegs()[5], 123u);
    EXPECT_EQ(p.initRegs()[6], 0u);
}

TEST(Program, SetImmediatePatchesDisplacement)
{
    Program p;
    const unsigned ld = p.load(1, kNoReg, 0, 1, "x");
    p.setImmediate(ld, 0xbeef);
    EXPECT_EQ(p.at(ld).imm, 0xbeef);
}

TEST(Program, ListingDisassemblesEveryInstruction)
{
    Program p;
    p.movi(1, 7);
    p.load(2, 1, 16, 64, "lab");
    p.store(1, 2, 8);
    p.branch(BranchCond::GE, 1, 2, 0);
    p.halt();
    const std::string lst = p.listing();
    EXPECT_NE(lst.find("load"), std::string::npos);
    EXPECT_NE(lst.find("store"), std::string::npos);
    EXPECT_NE(lst.find("lab"), std::string::npos);
    EXPECT_NE(lst.find("br"), std::string::npos);
}

} // namespace
} // namespace specint
