/**
 * @file
 * Cross-configuration property tests: the headline results must be
 * robust to the machine configuration, not artifacts of one geometry.
 *
 *  - The D-Cache attack (G^D_NPEU / VD-VD under DoM) works on both the
 *    small test hierarchy and the full Kaby Lake geometry, and across
 *    ROB/issue-width variations.
 *  - Defenses block it under every configuration.
 *  - QLRU insertion-age variants remain order-decodable with the same
 *    receiver protocol.
 *  - Channel runs are bit-for-bit deterministic for a fixed seed.
 */

#include <gtest/gtest.h>

#include "attack/channel.hh"
#include "attack/receiver.hh"
#include "attack/sender.hh"
#include "cpu/core.hh"

namespace specint
{
namespace
{

struct MachineVariant
{
    const char *name;
    HierarchyConfig hier;
    CoreConfig core;
};

std::vector<MachineVariant>
variants()
{
    std::vector<MachineVariant> out;
    {
        MachineVariant v{"small_default", HierarchyConfig::small(),
                         CoreConfig{}};
        out.push_back(v);
    }
    {
        MachineVariant v{"kabylake", HierarchyConfig::kabyLake(),
                         CoreConfig{}};
        out.push_back(v);
    }
    {
        MachineVariant v{"small_rob64", HierarchyConfig::small(),
                         CoreConfig{}};
        v.core.robSize = 64;
        out.push_back(v);
    }
    {
        MachineVariant v{"small_issue4", HierarchyConfig::small(),
                         CoreConfig{}};
        v.core.issueWidth = 4;
        out.push_back(v);
    }
    {
        MachineVariant v{"small_cdb2", HierarchyConfig::small(),
                         CoreConfig{}};
        v.core.cdbWidth = 2;
        out.push_back(v);
    }
    return out;
}

class AcrossMachines : public ::testing::TestWithParam<unsigned>
{
  protected:
    MachineVariant variant() const { return variants()[GetParam()]; }

    /** Run the NPEU/VD-VD sender under @p scheme; return the two
     *  order signals. */
    std::pair<int, int> runBoth(SchemeKind scheme)
    {
        const MachineVariant v = variant();
        Hierarchy hier(v.hier);
        MainMemory mem;
        Core victim(v.core, 0, hier, mem);
        victim.setScheme(makeScheme(scheme));
        AttackerAgent attacker(hier, 1);
        TrialHarness harness(hier, mem, victim, attacker);
        SenderParams params;
        params.gadget = GadgetKind::Npeu;
        params.ordering = OrderingKind::VdVd;
        const SenderProgram sp = buildSender(params, hier);

        int sig[2];
        for (unsigned secret = 0; secret < 2; ++secret) {
            harness.prepare(sp, secret);
            sig[secret] = harness.run(sp).orderSignal();
        }
        return {sig[0], sig[1]};
    }
};

TEST_P(AcrossMachines, DomLeaksEverywhere)
{
    const auto [s0, s1] = runBoth(SchemeKind::DomNonTso);
    EXPECT_EQ(s0, 0) << variant().name;
    EXPECT_EQ(s1, 1) << variant().name;
}

TEST_P(AcrossMachines, FenceBlocksEverywhere)
{
    const auto [s0, s1] = runBoth(SchemeKind::FenceSpectre);
    EXPECT_EQ(s0, s1) << variant().name;
}

TEST_P(AcrossMachines, AdvancedDefenseBlocksEverywhere)
{
    const auto [s0, s1] = runBoth(SchemeKind::AdvancedDefense);
    EXPECT_EQ(s0, s1) << variant().name;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, AcrossMachines,
    ::testing::Range(0u, static_cast<unsigned>(variants().size())),
    [](const auto &info) { return variants()[info.param].name; });

/** The receiver protocol survives QLRU insertion-age variants. */
class QlruVariants : public ::testing::TestWithParam<unsigned>
{};

TEST_P(QlruVariants, ReceiverStillDecodesOrder)
{
    const std::uint8_t insert_age =
        static_cast<std::uint8_t>(GetParam());
    HierarchyConfig cfg = HierarchyConfig::small();
    cfg.llcSlice.qlru.insertAge = insert_age;
    Hierarchy hier(cfg);
    AttackerAgent attacker(hier, 1);
    const Addr a = 0x01000040;
    const Addr b = findCongruentAddr(hier, a, 0x40000000);
    QlruReceiver recv(hier, attacker, a, b);

    for (const bool ab : {true, false}) {
        recv.prime();
        hier.access(0, ab ? a : b, AccessType::Data, 0);
        hier.access(0, ab ? b : a, AccessType::Data, 0);
        EXPECT_EQ(recv.decode(),
                  ab ? OrderDecode::AB : OrderDecode::BA)
            << "insertAge=" << int(insert_age) << " ab=" << ab;
    }
}

INSTANTIATE_TEST_SUITE_P(InsertAges, QlruVariants,
                         ::testing::Values(1u, 2u),
                         [](const auto &info) {
                             return "M" + std::to_string(info.param);
                         });

TEST(Determinism, ChannelResultsAreReproducible)
{
    ChannelConfig cfg;
    cfg.scheme = SchemeKind::DomNonTso;
    cfg.trialsPerBit = 3;
    cfg.noise = NoiseConfig::calibrated();
    cfg.seed = 77;
    const auto bits = randomBits(32, 5);
    const ChannelResult a = runICacheChannel(bits, cfg);
    const ChannelResult b = runICacheChannel(bits, cfg);
    EXPECT_EQ(a.bitErrors, b.bitErrors);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.discardedTrials, b.discardedTrials);
}

TEST(Determinism, CoreRunsAreReproducible)
{
    SenderParams params;
    params.gadget = GadgetKind::Npeu;
    params.ordering = OrderingKind::VdVd;

    Tick cycles[2];
    for (int run = 0; run < 2; ++run) {
        Hierarchy hier(HierarchyConfig::small());
        MainMemory mem;
        Core victim(CoreConfig{}, 0, hier, mem);
        victim.setScheme(makeScheme(SchemeKind::InvisiSpecSpectre));
        AttackerAgent attacker(hier, 1);
        TrialHarness harness(hier, mem, victim, attacker);
        const SenderProgram sp = buildSender(params, hier);
        harness.prepare(sp, 1);
        cycles[run] = harness.run(sp).cycles;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
}

} // namespace
} // namespace specint
