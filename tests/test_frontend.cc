/**
 * @file
 * Frontend unit tests: fetch pacing, decode-queue back-pressure (the
 * G^I_RS throttle point), branch redirection, I-line crossing and
 * invisible-fetch exposure marking.
 */

#include <gtest/gtest.h>

#include "cpu/frontend.hh"

namespace specint
{
namespace
{

struct FetchLog
{
    std::vector<Addr> lines;
    Tick readyAt = 0;
    bool invisible = false;

    Frontend::IFetchFn fn()
    {
        return [this](Addr line) -> IFetchResult {
            lines.push_back(line);
            return {readyAt, invisible};
        };
    }
};

Program
straightLine(unsigned n)
{
    Program p;
    for (unsigned i = 0; i + 1 < n; ++i)
        p.nop();
    p.halt();
    return p;
}

TEST(Frontend, FetchesUpToWidthPerCycle)
{
    Frontend fe({4, 16});
    fe.reset(0);
    const Program p = straightLine(32);
    BranchPredictor bp;
    FetchLog log;
    fe.tick(0, p, bp, log.fn());
    EXPECT_EQ(fe.queueSize(), 4u);
    fe.tick(1, p, bp, log.fn());
    EXPECT_EQ(fe.queueSize(), 8u);
}

TEST(Frontend, StopsWhenQueueFull)
{
    Frontend fe({4, 6});
    fe.reset(0);
    const Program p = straightLine(64);
    BranchPredictor bp;
    FetchLog log;
    for (Tick t = 0; t < 10; ++t)
        fe.tick(t, p, bp, log.fn());
    EXPECT_EQ(fe.queueSize(), 6u);
    // Draining one slot lets fetch resume.
    fe.popFront();
    fe.tick(11, p, bp, log.fn());
    EXPECT_EQ(fe.queueSize(), 6u);
}

TEST(Frontend, AccessesICachePerLine)
{
    Frontend fe({4, 64});
    fe.reset(0);
    const Program p = straightLine(40); // 3 lines (16 insts each)
    BranchPredictor bp;
    FetchLog log;
    for (Tick t = 0; t < 20 && !fe.halted(); ++t)
        fe.tick(t, p, bp, log.fn());
    ASSERT_EQ(log.lines.size(), 3u);
    EXPECT_EQ(log.lines[0], p.instLine(0));
    EXPECT_EQ(log.lines[1], p.instLine(16));
    EXPECT_EQ(log.lines[2], p.instLine(32));
}

TEST(Frontend, StallsOnICacheMiss)
{
    Frontend fe({4, 64});
    fe.reset(0);
    const Program p = straightLine(8);
    BranchPredictor bp;
    FetchLog log;
    log.readyAt = 5; // line data arrives at cycle 5
    fe.tick(0, p, bp, log.fn());
    EXPECT_EQ(fe.queueSize(), 0u);
    fe.tick(3, p, bp, log.fn());
    EXPECT_EQ(fe.queueSize(), 0u);
    log.readyAt = 0;
    fe.tick(5, p, bp, log.fn());
    EXPECT_EQ(fe.queueSize(), 4u);
    EXPECT_EQ(log.lines.size(), 1u); // no second access for same line
}

TEST(Frontend, FollowsPredictedTakenBranch)
{
    Program p;
    const unsigned br = p.branch(BranchCond::LT, 1, 2, 0);
    p.nop(); // fall-through
    const unsigned tgt = p.nop();
    p.halt();
    p.setBranchTarget(br, tgt);

    BranchPredictor bp;
    bp.train(br, true, 4);
    Frontend fe({4, 16});
    fe.reset(0);
    FetchLog log;
    fe.tick(0, p, bp, log.fn());
    ASSERT_GE(fe.queueSize(), 2u);
    const FetchedInst first = fe.popFront();
    EXPECT_EQ(first.pc, br);
    EXPECT_TRUE(first.predictedTaken);
    EXPECT_EQ(fe.popFront().pc, tgt); // skipped the fall-through
}

TEST(Frontend, RedirectFlushesAndRefetches)
{
    Frontend fe({4, 16});
    fe.reset(0);
    const Program p = straightLine(32);
    BranchPredictor bp;
    FetchLog log;
    fe.tick(0, p, bp, log.fn());
    ASSERT_GT(fe.queueSize(), 0u);
    fe.redirect(20, 10);
    EXPECT_TRUE(fe.queueEmpty());
    fe.tick(5, p, bp, log.fn()); // before readyAt: nothing
    EXPECT_TRUE(fe.queueEmpty());
    fe.tick(10, p, bp, log.fn());
    ASSERT_FALSE(fe.queueEmpty());
    EXPECT_EQ(fe.front().pc, 20u);
}

TEST(Frontend, HaltStopsFetch)
{
    Frontend fe({4, 16});
    fe.reset(0);
    Program p;
    p.nop();
    p.halt();
    BranchPredictor bp;
    FetchLog log;
    fe.tick(0, p, bp, log.fn());
    EXPECT_TRUE(fe.halted());
    EXPECT_EQ(fe.queueSize(), 2u); // nop + halt fetched, then stop
    fe.tick(1, p, bp, log.fn());
    EXPECT_EQ(fe.queueSize(), 2u);
}

TEST(Frontend, MarksExposureOnInvisibleFetch)
{
    Frontend fe({4, 16});
    fe.reset(0);
    const Program p = straightLine(8);
    BranchPredictor bp;
    FetchLog log;
    log.invisible = true;
    fe.tick(0, p, bp, log.fn());
    ASSERT_GE(fe.queueSize(), 2u);
    const FetchedInst a = fe.popFront();
    const FetchedInst b = fe.popFront();
    // Only the first instruction of the line carries the exposure.
    EXPECT_EQ(a.exposureLine, p.instLine(0));
    EXPECT_EQ(b.exposureLine, kAddrInvalid);
}

TEST(Frontend, RunsPastProgramEndHalts)
{
    Frontend fe({4, 16});
    fe.reset(7); // beyond a 4-instruction program
    const Program p = straightLine(4);
    BranchPredictor bp;
    FetchLog log;
    fe.tick(0, p, bp, log.fn());
    EXPECT_TRUE(fe.halted());
    EXPECT_TRUE(fe.queueEmpty());
}

} // namespace
} // namespace specint
