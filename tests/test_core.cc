/**
 * @file
 * Out-of-order core tests: functional correctness (dataflow, memory,
 * branches, squash recovery) and the microarchitectural timing
 * properties the attacks build on (non-pipelined EU occupancy, CDB
 * bandwidth, MSHR limits, age-ordered issue).
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "memory/hierarchy.hh"
#include "spec/unsafe.hh"

namespace specint
{
namespace
{

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest() : hier(HierarchyConfig::small()), core(cfg(), 0, hier, mem)
    {}

    static CoreConfig cfg()
    {
        CoreConfig c;
        c.maxCycles = 200000;
        return c;
    }

    Hierarchy hier;
    MainMemory mem;
    Core core;
};

TEST_F(CoreTest, AluChainComputesArchitecturalResult)
{
    Program p;
    p.movi(1, 5);
    p.alu(2, 1, 1, 2); // r2 = 5 + 5 + 2
    p.alu(3, 2, 1, 0); // r3 = 12 + 5
    p.halt();
    const CoreStats s = core.run(p);
    EXPECT_TRUE(s.finished);
    EXPECT_EQ(core.archReg(2), 12u);
    EXPECT_EQ(core.archReg(3), 17u);
}

TEST_F(CoreTest, MulAndPassThroughOps)
{
    Program p;
    p.movi(1, 6);
    p.mul(2, 1, 1, 1); // 6*6+1
    p.sqrt(3, 2);      // pass-through
    p.fdiv(4, 3);
    p.halt();
    core.run(p);
    EXPECT_EQ(core.archReg(2), 37u);
    EXPECT_EQ(core.archReg(3), 37u);
    EXPECT_EQ(core.archReg(4), 37u);
}

TEST_F(CoreTest, LoadReadsMemory)
{
    mem.write(0x1000, 99);
    Program p;
    p.load(1, kNoReg, 0x1000);
    p.halt();
    core.run(p);
    EXPECT_EQ(core.archReg(1), 99u);
}

TEST_F(CoreTest, ScaledAddressing)
{
    mem.write(0x2000 + 3 * 64, 7);
    Program p;
    p.movi(1, 3);
    p.load(2, 1, 0x2000, 64); // mem[3*64 + 0x2000]
    p.halt();
    core.run(p);
    EXPECT_EQ(core.archReg(2), 7u);
}

TEST_F(CoreTest, StoreVisibleAfterRetire)
{
    Program p;
    p.movi(1, 0x3000);
    p.movi(2, 55);
    p.store(1, 2, 0);
    p.halt();
    core.run(p);
    EXPECT_EQ(mem.read(0x3000), 55u);
}

TEST_F(CoreTest, StoreToLoadForwarding)
{
    Program p;
    p.movi(1, 0x4000);
    p.movi(2, 77);
    p.store(1, 2, 0);
    p.load(3, 1, 0, 1, "fwd");
    p.halt();
    core.run(p);
    EXPECT_EQ(core.archReg(3), 77u);
    // The forwarded load must beat any plausible cache miss.
    const auto *e = core.traceEntry("fwd");
    ASSERT_NE(e, nullptr);
    EXPECT_LT(e->completeAt - e->issuedAt,
              hier.config().l2Latency + hier.config().l1Latency);
}

TEST_F(CoreTest, BranchTakenSkipsInstructions)
{
    Program p;
    p.movi(1, 1);
    p.movi(2, 2);
    const unsigned br = p.branch(BranchCond::LT, 1, 2, 0); // 1 < 2: taken
    p.movi(3, 111); // skipped
    const unsigned tgt = p.movi(4, 222);
    p.halt();
    p.setBranchTarget(br, tgt);
    core.run(p);
    EXPECT_EQ(core.archReg(3), 0u);
    EXPECT_EQ(core.archReg(4), 222u);
}

TEST_F(CoreTest, MispredictSquashRestoresState)
{
    // Branch is actually taken; untrained predictor says not-taken, so
    // the wrong path (r3 = 111) executes transiently and must leave no
    // architectural trace.
    Program p;
    p.movi(1, 1);
    p.movi(2, 2);
    const unsigned br = p.branch(BranchCond::LT, 1, 2, 0);
    p.movi(3, 111); // wrong path
    const unsigned tgt = p.alu(4, 3, kNoReg, 1); // r4 = r3 + 1
    p.halt();
    p.setBranchTarget(br, tgt);
    const CoreStats s = core.run(p);
    EXPECT_TRUE(s.finished);
    EXPECT_EQ(s.squashes, 1u);
    EXPECT_EQ(core.archReg(3), 0u);
    EXPECT_EQ(core.archReg(4), 1u); // r3's *architectural* value is 0
}

TEST_F(CoreTest, CounterLoopExecutes)
{
    // r1 counts 0..9 via a backward branch; the predictor warms up.
    Program p;
    p.movi(1, 0);
    p.movi(2, 10);
    const unsigned top = p.alu(1, 1, kNoReg, 1); // r1 += 1
    p.branch(BranchCond::LT, 1, 2, top);
    p.halt();
    const CoreStats s = core.run(p);
    EXPECT_TRUE(s.finished);
    EXPECT_EQ(core.archReg(1), 10u);
    EXPECT_GE(s.branches, 10u);
}

TEST_F(CoreTest, MaxCyclesGuardFires)
{
    Program p;
    p.movi(1, 0);
    const unsigned top = p.alu(1, 1, kNoReg, 0); // r1 unchanged
    p.branch(BranchCond::GE, 1, 1, top);         // always taken
    p.halt();
    CoreConfig c = cfg();
    c.maxCycles = 2000;
    Core small(c, 0, hier, mem);
    const CoreStats s = small.run(p);
    EXPECT_FALSE(s.finished);
    EXPECT_EQ(s.cycles, 2000u);
}

TEST_F(CoreTest, NonPipelinedUnitSerialisesIndependentOps)
{
    // Two independent sqrts contend for the single non-pipelined port-0
    // unit: the second starts only after the first completes.
    Program p;
    p.movi(1, 4);
    p.movi(2, 9);
    p.sqrt(3, 1, "s1");
    p.sqrt(4, 2, "s2");
    p.halt();
    core.run(p);
    const auto *s1 = core.traceEntry("s1");
    const auto *s2 = core.traceEntry("s2");
    ASSERT_NE(s1, nullptr);
    ASSERT_NE(s2, nullptr);
    const Tick lat = opTraits(Op::FpSqrt).latency;
    EXPECT_GE(std::max(s1->issuedAt, s2->issuedAt),
              std::min(s1->issuedAt, s2->issuedAt) + lat);
}

TEST_F(CoreTest, PipelinedUnitsDoNotSerialise)
{
    Program p;
    p.movi(1, 4);
    p.movi(2, 9);
    p.mul(3, 1, kNoReg, 0, "m1");
    p.mul(4, 2, kNoReg, 0, "m2");
    p.halt();
    core.run(p);
    const auto *m1 = core.traceEntry("m1");
    const auto *m2 = core.traceEntry("m2");
    ASSERT_NE(m1, nullptr);
    ASSERT_NE(m2, nullptr);
    // Port 1 accepts one mul per cycle: gap of 1, not the full latency.
    EXPECT_LE(std::max(m1->issuedAt, m2->issuedAt),
              std::min(m1->issuedAt, m2->issuedAt) + 1);
}

TEST_F(CoreTest, AgeOrderedIssuePrefersOlder)
{
    // Both sqrts become ready the same cycle; the older one must issue
    // first on the shared non-pipelined unit.
    Program p;
    p.movi(1, 4);
    p.sqrt(2, 1, "older");
    p.sqrt(3, 1, "younger");
    p.halt();
    core.run(p);
    EXPECT_LT(core.traceEntry("older")->issuedAt,
              core.traceEntry("younger")->issuedAt);
}

TEST_F(CoreTest, CdbWidthLimitsWritebackThroughput)
{
    // 16 independent 1-cycle ALUs; with cdbWidth=1 their writebacks
    // serialise and the program takes visibly longer.
    Program p;
    for (unsigned i = 0; i < 16; ++i)
        p.alu(static_cast<RegId>(8 + i), kNoReg, kNoReg, i);
    p.halt();

    CoreConfig wide = cfg();
    wide.cdbWidth = 8;
    CoreConfig narrow = cfg();
    narrow.cdbWidth = 1;

    Hierarchy h1(HierarchyConfig::small()), h2(HierarchyConfig::small());
    MainMemory m1, m2;
    // Pre-warm the code lines so cold I-fetch misses do not mask the
    // writeback bottleneck.
    for (unsigned pc = 0; pc < p.size(); ++pc) {
        h1.access(0, p.instLine(pc), AccessType::Instr, 0);
        h2.access(0, p.instLine(pc), AccessType::Instr, 0);
    }
    Core cw(wide, 0, h1, m1), cn(narrow, 0, h2, m2);
    const auto sw = cw.run(p);
    const auto sn = cn.run(p);
    EXPECT_GT(sn.cycles, sw.cycles);
}

TEST_F(CoreTest, MshrLimitDelaysExtraMisses)
{
    // More concurrent independent misses than MSHRs: with 2 MSHRs the
    // later loads wait a full memory round-trip longer.
    Program p;
    for (unsigned i = 0; i < 6; ++i)
        p.load(static_cast<RegId>(8 + i), kNoReg,
               0x100000 + 0x10000 * i, 1, "ld" + std::to_string(i));
    p.halt();

    CoreConfig few = cfg();
    few.mshrs = 2;
    Hierarchy h1(HierarchyConfig::small());
    MainMemory m1;
    Core c1(few, 0, h1, m1);
    c1.run(p);
    const Tick t_first = c1.traceEntry("ld0")->issuedAt;
    const Tick t_last = c1.traceEntry("ld5")->issuedAt;
    EXPECT_GE(t_last, t_first + h1.config().memLatency);

    CoreConfig many = cfg();
    many.mshrs = 16;
    Hierarchy h2(HierarchyConfig::small());
    MainMemory m2;
    Core c2(many, 0, h2, m2);
    c2.run(p);
    EXPECT_LT(c2.traceEntry("ld5")->issuedAt,
              t_first + h2.config().memLatency);
}

TEST_F(CoreTest, FenceIssuesOnlyAtRobHead)
{
    Program p;
    p.load(1, kNoReg, 0x9000, 1, "slow"); // cold miss
    p.fence("fence");
    p.alu(2, kNoReg, kNoReg, 1, "after");
    p.halt();
    core.run(p);
    const auto *slow = core.traceEntry("slow");
    const auto *fence = core.traceEntry("fence");
    ASSERT_NE(slow, nullptr);
    ASSERT_NE(fence, nullptr);
    EXPECT_GE(fence->issuedAt, slow->completeAt);
}

TEST_F(CoreTest, WrongPathLoadsLeaveCacheState)
{
    // Baseline (unsafe) semantics: a transient load fills the cache —
    // this is exactly what Spectre exploits and what the schemes under
    // test must prevent.
    mem.write(0x5000, 1); // secret = 1
    mem.write(0x6000, 0x6100);
    mem.write(0x6100, 2); // N = 2, reached via a cold pointer chase
    Program p;
    p.movi(1, 5);
    p.load(2, kNoReg, 0x6000); // slow predicate: branch resolves late
    p.load(2, 2, 0);
    const unsigned br = p.branch(BranchCond::LT, 1, 2, 0); // 5<2: no
    p.halt(); // correct path
    const unsigned wrong = p.load(3, kNoReg, 0x5000, 1, "secret");
    p.load(4, 3, 0x700000, 64); // transmit: fills 0x700000+secret*64
    p.halt();
    p.setBranchTarget(br, wrong);
    // Warm the secret's line so the transient access is fast (Spectre
    // assumes the secret itself is cached).
    hier.access(0, 0x5000, AccessType::Data, 0);
    core.predictor().train(br, true, 4); // mistrain: predict taken
    const CoreStats s = core.run(p);
    EXPECT_GE(s.squashes, 1u);
    EXPECT_EQ(core.archReg(3), 0u); // squashed architecturally
    EXPECT_TRUE(hier.llcContains(0x700000 + 64)); // ...but cache leaks
    EXPECT_FALSE(hier.llcContains(0x700000));
}

TEST_F(CoreTest, TraceRecordsLabeledTimings)
{
    Program p;
    p.movi(1, 3, "a");
    p.alu(2, 1, kNoReg, 1, "b");
    p.halt();
    core.run(p);
    const auto *a = core.traceEntry("a");
    const auto *b = core.traceEntry("b");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_LE(a->dispatchedAt, a->issuedAt);
    EXPECT_LT(a->issuedAt, a->completeAt);
    EXPECT_LE(a->completeAt, a->retiredAt);
    EXPECT_GT(b->completeAt, a->completeAt); // dependency
    EXPECT_TRUE(core.completedBefore("a", "b"));
}

TEST_F(CoreTest, RerunResetsPipelineState)
{
    Program p;
    p.movi(1, 9);
    p.halt();
    core.run(p);
    Program q;
    q.alu(1, 1, kNoReg, 1); // reads initial r1 = 0
    q.halt();
    core.run(q);
    EXPECT_EQ(core.archReg(1), 1u);
}

} // namespace
} // namespace specint
