/**
 * @file
 * Noise model tests: probabilities, jitter bounds, determinism.
 */

#include <gtest/gtest.h>

#include "sim/noise.hh"

namespace specint
{
namespace
{

TEST(Noise, NoneIsSilent)
{
    NoiseModel n(NoiseConfig::none(), 1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(n.mistrainFails());
        EXPECT_EQ(n.loadJitter(), 0u);
        EXPECT_FALSE(n.strayEviction());
    }
}

TEST(Noise, CalibratedRatesApproximatelyMatchConfig)
{
    const NoiseConfig cfg = NoiseConfig::calibrated();
    NoiseModel n(cfg, 7);
    const int trials = 20000;
    int fails = 0, strays = 0, jitters = 0;
    for (int i = 0; i < trials; ++i) {
        fails += n.mistrainFails();
        strays += n.strayEviction();
        jitters += n.loadJitter() > 0;
    }
    EXPECT_NEAR(fails / double(trials), cfg.mistrainFailProb, 0.02);
    EXPECT_NEAR(strays / double(trials), cfg.strayEvictionProb, 0.02);
    EXPECT_NEAR(jitters / double(trials), cfg.loadJitterProb, 0.02);
}

TEST(Noise, JitterBounded)
{
    NoiseConfig cfg;
    cfg.loadJitterProb = 1.0;
    cfg.loadJitterMax = 17;
    NoiseModel n(cfg, 3);
    for (int i = 0; i < 1000; ++i) {
        const Tick j = n.loadJitter();
        EXPECT_GE(j, 1u);
        EXPECT_LE(j, 17u);
    }
}

TEST(Noise, DeterministicForSeed)
{
    NoiseModel a(NoiseConfig::calibrated(), 42);
    NoiseModel b(NoiseConfig::calibrated(), 42);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.mistrainFails(), b.mistrainFails());
        EXPECT_EQ(a.loadJitter(), b.loadJitter());
    }
}

} // namespace
} // namespace specint
