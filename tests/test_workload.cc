/**
 * @file
 * Workload generator and defense-overhead (Fig. 12) tests.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "memory/hierarchy.hh"
#include "workload/suite.hh"

namespace specint
{
namespace
{

TEST(Generator, DeterministicForSameSpec)
{
    WorkloadSpec spec;
    spec.instructions = 500;
    const auto a = generateWorkload(spec);
    const auto b = generateWorkload(spec);
    ASSERT_EQ(a.prog.size(), b.prog.size());
    for (unsigned i = 0; i < a.prog.size(); ++i) {
        EXPECT_EQ(a.prog.at(i).op, b.prog.at(i).op);
        EXPECT_EQ(a.prog.at(i).imm, b.prog.at(i).imm);
    }
}

TEST(Generator, RespectsInstructionMixRoughly)
{
    WorkloadSpec spec;
    spec.instructions = 4000;
    spec.loadFrac = 0.30;
    spec.branchFrac = 0.10;
    const auto wl = generateWorkload(spec);
    unsigned loads = 0, branches = 0;
    for (const auto &si : wl.prog.code()) {
        loads += si.isLoad() ? 1 : 0;
        branches += si.isBranch() ? 1 : 0;
    }
    const double n = static_cast<double>(wl.prog.size());
    // Branch predicate loads inflate the load count slightly.
    EXPECT_NEAR(loads / n, 0.34, 0.08);
    EXPECT_GT(branches, 0u);
}

TEST(Generator, ProgramsRunToCompletion)
{
    for (const WorkloadSpec &spec : spec2017Archetypes(1500)) {
        const auto wl = generateWorkload(spec);
        Hierarchy hier(HierarchyConfig::small());
        MainMemory mem;
        for (const auto &[a, v] : wl.memInit)
            mem.write(a, v);
        Core core(CoreConfig{}, 0, hier, mem);
        const CoreStats s = core.run(wl.prog);
        EXPECT_TRUE(s.finished) << spec.name;
        EXPECT_GT(s.retired, spec.instructions / 2) << spec.name;
    }
}

TEST(Generator, BranchyWorkloadsMispredict)
{
    WorkloadSpec spec;
    spec.name = "branchy";
    spec.instructions = 3000;
    spec.branchFrac = 0.2;
    spec.branchTakenProb = 0.4; // hard to predict
    const auto wl = generateWorkload(spec);
    Hierarchy hier(HierarchyConfig::small());
    MainMemory mem;
    for (const auto &[a, v] : wl.memInit)
        mem.write(a, v);
    Core core(CoreConfig{}, 0, hier, mem);
    const CoreStats s = core.run(wl.prog);
    EXPECT_GT(s.mispredicts, 10u);
}

TEST(Suite, ArchetypesCoverTheAxes)
{
    const auto suite = spec2017Archetypes();
    EXPECT_GE(suite.size(), 10u);
    bool chasey = false, branchy = false, fp = false;
    for (const auto &s : suite) {
        chasey |= s.chaseFrac > 0.5;
        branchy |= s.branchFrac > 0.15;
        fp |= s.sqrtFrac > 0.05;
    }
    EXPECT_TRUE(chasey);
    EXPECT_TRUE(branchy);
    EXPECT_TRUE(fp);
}

TEST(DefenseOverhead, FuturisticCostsMoreThanSpectre)
{
    // Fig. 12 shape: Futuristic >> Spectre >> 1.0.
    const std::vector<SchemeKind> schemes = {
        SchemeKind::Unsafe, SchemeKind::FenceSpectre,
        SchemeKind::FenceFuturistic};
    const auto report =
        runDefenseOverhead(schemes, spec2017Archetypes(1200));
    ASSERT_EQ(report.geomean.size(), 3u);
    EXPECT_NEAR(report.geomean[0], 1.0, 1e-9);
    EXPECT_GT(report.geomean[1], 1.05);
    EXPECT_GT(report.geomean[2], report.geomean[1] * 1.3);
    for (const auto &row : report.rows) {
        // Tiny speedups are possible (no wrong-path cache pollution
        // when transient loads never issue), hence the 0.95 floor.
        EXPECT_GE(row.slowdown[1], 0.95) << row.workload;
        EXPECT_GE(row.slowdown[2], row.slowdown[1] * 0.95)
            << row.workload;
    }
}

} // namespace
} // namespace specint
