/**
 * @file
 * End-to-end covert channel tests (the paper's two PoCs, §4): both
 * channels transmit noiselessly with zero errors; under calibrated
 * noise the error rate falls as trials-per-bit grows (the Fig. 11
 * trade-off); throughput accounting behaves sanely.
 */

#include <gtest/gtest.h>

#include "attack/channel.hh"

namespace specint
{
namespace
{

TEST(RandomBits, DeterministicAndBinary)
{
    const auto a = randomBits(64, 5);
    const auto b = randomBits(64, 5);
    EXPECT_EQ(a, b);
    bool saw0 = false, saw1 = false;
    for (auto bit : a) {
        ASSERT_LE(bit, 1);
        saw0 |= bit == 0;
        saw1 |= bit == 1;
    }
    EXPECT_TRUE(saw0 && saw1);
}

TEST(DCacheChannel, NoiselessTransmissionIsErrorFree)
{
    ChannelConfig cfg;
    cfg.scheme = SchemeKind::DomNonTso;
    cfg.trialsPerBit = 1;
    cfg.noise = NoiseConfig::none();
    const auto bits = randomBits(24, 7);
    const ChannelResult res = runDCacheChannel(bits, cfg);
    EXPECT_EQ(res.bitsSent, 24u);
    EXPECT_EQ(res.bitErrors, 0u);
    EXPECT_GT(res.totalCycles, 0u);
}

TEST(DCacheChannel, WorksAgainstInvisiSpecToo)
{
    ChannelConfig cfg;
    cfg.scheme = SchemeKind::InvisiSpecSpectre;
    cfg.trialsPerBit = 1;
    cfg.noise = NoiseConfig::none();
    const auto bits = randomBits(16, 9);
    EXPECT_EQ(runDCacheChannel(bits, cfg).bitErrors, 0u);
}

TEST(DCacheChannel, MshrGadgetVariantTransmits)
{
    // The Fig. 4 gadget drives the same receiver: MSHR exhaustion
    // delays the q-dependent load A past the reference B.
    ChannelConfig cfg;
    cfg.scheme = SchemeKind::InvisiSpecSpectre;
    cfg.trialsPerBit = 1;
    cfg.noise = NoiseConfig::none();
    cfg.sender.gadget = GadgetKind::Mshr;
    const auto bits = randomBits(16, 31);
    EXPECT_EQ(runDCacheChannel(bits, cfg).bitErrors, 0u);
}

TEST(ICacheChannel, NoiselessTransmissionIsErrorFree)
{
    ChannelConfig cfg;
    cfg.scheme = SchemeKind::DomNonTso;
    cfg.trialsPerBit = 1;
    cfg.noise = NoiseConfig::none();
    const auto bits = randomBits(24, 11);
    const ChannelResult res = runICacheChannel(bits, cfg);
    EXPECT_EQ(res.bitErrors, 0u);
}

TEST(ICacheChannel, FasterThanDCacheChannel)
{
    // Fig. 11: the I-Cache PoC reaches substantially higher bit rates
    // (its trial is cheaper — no prime/probe over two eviction sets).
    ChannelConfig cfg;
    cfg.trialsPerBit = 1;
    cfg.noise = NoiseConfig::none();
    const auto bits = randomBits(16, 13);
    const ChannelResult d = runDCacheChannel(bits, cfg);
    const ChannelResult i = runICacheChannel(bits, cfg);
    EXPECT_GT(i.bitsPerSecond(cfg.clockGhz),
              d.bitsPerSecond(cfg.clockGhz) * 1.2);
}

TEST(ChannelNoise, MoreTrialsPerBitReduceErrors)
{
    ChannelConfig cfg;
    cfg.scheme = SchemeKind::DomNonTso;
    cfg.noise = NoiseConfig::calibrated();
    cfg.seed = 21;
    const auto bits = randomBits(48, 17);

    cfg.trialsPerBit = 1;
    const double e1 = runICacheChannel(bits, cfg).errorRate();
    cfg.trialsPerBit = 9;
    const double e9 = runICacheChannel(bits, cfg).errorRate();
    EXPECT_LE(e9, e1);
    EXPECT_GT(e1, 0.0); // calibrated noise must actually cause errors
}

TEST(ChannelNoise, ThroughputFallsWithTrialsPerBit)
{
    ChannelConfig cfg;
    cfg.noise = NoiseConfig::calibrated();
    const auto bits = randomBits(16, 19);
    cfg.trialsPerBit = 1;
    const double r1 =
        runICacheChannel(bits, cfg).bitsPerSecond(cfg.clockGhz);
    cfg.trialsPerBit = 7;
    const double r7 =
        runICacheChannel(bits, cfg).bitsPerSecond(cfg.clockGhz);
    EXPECT_LT(r7, r1);
    EXPECT_GT(r7, 0.0);
}

TEST(ChannelResultMath, RatesAndErrors)
{
    ChannelResult r;
    r.bitsSent = 100;
    r.bitErrors = 20;
    r.totalCycles = 3'600'000'000ULL; // 1 s at 3.6 GHz
    EXPECT_DOUBLE_EQ(r.errorRate(), 0.2);
    EXPECT_NEAR(r.bitsPerSecond(3.6), 100.0, 1e-6);
}

} // namespace
} // namespace specint
