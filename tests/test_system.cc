/**
 * @file
 * System-layer tests: N-core construction and configuration
 * validation, deterministic round-robin tick interleaving, per-core
 * stat isolation against solo Core runs, the shared-LLC contention
 * model, and secret recovery through the cross-core occupancy and
 * eviction channels.
 */

#include <gtest/gtest.h>

#include "attack/cross_core_probe.hh"
#include "cpu/core.hh"
#include "system/system.hh"
#include "workload/generator.hh"

namespace specint
{
namespace
{

WorkloadSpec
coreSpec(std::uint64_t seed, Addr data_base, Addr code_base)
{
    WorkloadSpec spec;
    spec.name = "sys-core-" + std::to_string(seed);
    spec.instructions = 600;
    spec.loadFrac = 0.25;
    spec.storeFrac = 0.05;
    spec.branchFrac = 0.12;
    spec.mulFrac = 0.05;
    spec.sqrtFrac = 0.02;
    spec.chaseFrac = 0.15;
    spec.footprintLines = 128;
    spec.dataBase = data_base;
    spec.codeBase = code_base;
    spec.branchTakenProb = 0.35;
    spec.seed = seed;
    return spec;
}

// ---------------------------------------------------------------------
// Construction / validation
// ---------------------------------------------------------------------

TEST(SystemConfigValidation, DefaultIsValid)
{
    EXPECT_EQ(SystemConfig{}.validate(), "");
}

TEST(SystemConfigValidation, BadConfigsAreRejected)
{
    SystemConfig cfg;
    cfg.numCores = 0;
    EXPECT_NE(cfg.validate().find("numCores"), std::string::npos);

    cfg = SystemConfig{};
    cfg.numCores = 65;
    EXPECT_NE(cfg.validate().find("numCores"), std::string::npos);

    cfg = SystemConfig{};
    cfg.core.robSize = 0;
    EXPECT_NE(cfg.validate().find("robSize"), std::string::npos);

    cfg = SystemConfig{};
    cfg.smt.numThreads = 0;
    EXPECT_NE(cfg.validate().find("numThreads"), std::string::npos);

    cfg = SystemConfig{};
    cfg.hier.llcSlices = 3;
    EXPECT_NE(cfg.validate().find("llcSlices"), std::string::npos);

    // The hierarchy validation chain: latency ordering and geometry
    // problems surface through SystemConfig with the hier. prefix.
    cfg = SystemConfig{};
    cfg.hier.memLatency = cfg.hier.l1Latency;
    EXPECT_NE(cfg.validate().find("hier.latencies"), std::string::npos);

    cfg = SystemConfig{};
    cfg.hier.l1d.ways = 0;
    EXPECT_NE(cfg.validate().find("hier.l1d"), std::string::npos);
}

TEST(SystemConfigValidationDeathTest, ConstructorFatalsOnBadConfig)
{
    SystemConfig cfg;
    cfg.numCores = 0;
    EXPECT_EXIT(System{cfg}, ::testing::ExitedWithCode(1),
                "SystemConfig: numCores");
}

TEST(SystemTest, ConstructsNCoresOverOneHierarchy)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    System sys(cfg);
    EXPECT_EQ(sys.numCores(), 4u);
    // One id per core plus the spare direct-LLC client id.
    EXPECT_EQ(sys.hierarchy().config().cores, 5u);
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_EQ(sys.core(c).id(), c);
}

// ---------------------------------------------------------------------
// Deterministic tick interleaving
// ---------------------------------------------------------------------

TEST(SystemTest, RunsAreDeterministic)
{
    const GeneratedWorkload wl0 = generateWorkload(coreSpec(3, 0x01000000, 0x400000));
    const GeneratedWorkload wl1 = generateWorkload(coreSpec(9, 0x02000000, 0x500000));

    auto run_once = [&](bool contended) {
        SystemConfig cfg;
        cfg.numCores = 2;
        if (contended) {
            cfg.hier.llcPortBusy = 2;
            cfg.hier.llcMshrs = 4;
        }
        System sys(cfg);
        for (const auto &[a, v] : wl0.memInit)
            sys.memory().write(a, v);
        for (const auto &[a, v] : wl1.memInit)
            sys.memory().write(a, v);
        return sys.run({{&wl0.prog}, {&wl1.prog}});
    };

    for (bool contended : {false, true}) {
        const SystemRunResult a = run_once(contended);
        const SystemRunResult b = run_once(contended);
        ASSERT_TRUE(a.finished);
        EXPECT_EQ(a.cycles, b.cycles) << "contended=" << contended;
        for (unsigned c = 0; c < 2; ++c) {
            EXPECT_EQ(a.cores[c].threads[0].cycles,
                      b.cores[c].threads[0].cycles);
            EXPECT_EQ(a.cores[c].threads[0].retired,
                      b.cores[c].threads[0].retired);
            EXPECT_EQ(a.cores[c].threads[0].issued,
                      b.cores[c].threads[0].issued);
        }
    }
}

TEST(SystemTest, TickStepsEveryUnfinishedCoreOncePerCycle)
{
    Program fast;
    fast.alu(1, 1, kNoReg, 1);
    fast.halt();
    Program slow;
    for (unsigned i = 0; i < 100; ++i)
        slow.alu(2, 2, kNoReg, 1);
    slow.halt();

    SystemConfig cfg;
    System sys(cfg);
    sys.beginRun({{&fast}, {&slow}});
    ASSERT_FALSE(sys.halted());
    // Lockstep while both are live.
    ASSERT_TRUE(sys.tick());
    EXPECT_EQ(sys.core(0).now(), 1u);
    EXPECT_EQ(sys.core(1).now(), 1u);
    // Run to completion: the fast core stops consuming ticks once its
    // Halt retires, the slow one continues.
    while (sys.tick()) {
    }
    EXPECT_TRUE(sys.halted());
    EXPECT_LT(sys.core(0).now(), sys.core(1).now());
    const SystemRunResult res = sys.finishRun();
    EXPECT_TRUE(res.finished);
    EXPECT_EQ(res.cycles, sys.core(1).now());
    EXPECT_EQ(res.cores[0].threads[0].retired, 2u);
    EXPECT_EQ(res.cores[1].threads[0].retired, 101u);
}

// ---------------------------------------------------------------------
// Per-core stat isolation
// ---------------------------------------------------------------------

TEST(SystemTest, DisjointWorkloadsMatchSoloRunsExactly)
{
    // With the contention model off and disjoint footprints, each core
    // of a System must produce exactly the stats of a solo Core run:
    // private L1/L2 plus an LLC big enough that the cores' sets do not
    // collide keeps them independent.
    const GeneratedWorkload wl0 = generateWorkload(coreSpec(5, 0x01000000, 0x400000));
    const GeneratedWorkload wl1 = generateWorkload(coreSpec(8, 0x02000000, 0x500000));

    auto solo = [](const GeneratedWorkload &wl) {
        Hierarchy hier(HierarchyConfig::kabyLake());
        MainMemory mem;
        for (const auto &[a, v] : wl.memInit)
            mem.write(a, v);
        Core core(CoreConfig{}, 0, hier, mem);
        return core.run(wl.prog);
    };
    const CoreStats s0 = solo(wl0);
    const CoreStats s1 = solo(wl1);
    ASSERT_TRUE(s0.finished && s1.finished);

    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.hier = HierarchyConfig::kabyLake();
    System sys(cfg);
    for (const auto &[a, v] : wl0.memInit)
        sys.memory().write(a, v);
    for (const auto &[a, v] : wl1.memInit)
        sys.memory().write(a, v);
    const SystemRunResult res = sys.run({{&wl0.prog}, {&wl1.prog}});
    ASSERT_TRUE(res.finished);

    const ThreadStats &t0 = res.cores[0].threads[0];
    const ThreadStats &t1 = res.cores[1].threads[0];
    EXPECT_EQ(t0.retired, s0.retired);
    EXPECT_EQ(t0.issued, s0.issued);
    EXPECT_EQ(t0.squashes, s0.squashes);
    EXPECT_EQ(t0.loads, s0.loads);
    EXPECT_EQ(res.cores[0].cycles, s0.cycles);
    EXPECT_EQ(t1.retired, s1.retired);
    EXPECT_EQ(t1.issued, s1.issued);
    EXPECT_EQ(t1.squashes, s1.squashes);
    EXPECT_EQ(t1.loads, s1.loads);
}

// ---------------------------------------------------------------------
// Shared-level contention model
// ---------------------------------------------------------------------

TEST(SystemTest, SharedLlcContentionSlowsACoLocatedCore)
{
    // A probe core streaming uncached loads next to a memory-hammering
    // neighbour must get slower when the shared-level contention model
    // is on, and must record queueing in the hierarchy's stats.
    Program hammer(0x400000);
    for (unsigned i = 0; i < 64; ++i)
        hammer.load(static_cast<RegId>(16 + (i % 16)), kNoReg,
                    0x01000000 + 64 * i, 1);
    hammer.halt();
    Program probe(0x500000);
    for (unsigned i = 0; i < 32; ++i)
        probe.load(static_cast<RegId>(16 + (i % 16)), kNoReg,
                   0x02000000 + 64 * i, 1);
    probe.halt();
    Program idle(0x600000);
    idle.halt();

    auto probe_cycles = [&](bool hammered, unsigned llc_mshrs) {
        SystemConfig cfg;
        cfg.numCores = 2;
        cfg.hier.llcPortBusy = 2;
        cfg.hier.llcMshrs = llc_mshrs;
        System sys(cfg);
        const SystemRunResult res =
            sys.run({{hammered ? &hammer : &idle}, {&probe}});
        EXPECT_TRUE(res.finished);
        EXPECT_GT(sys.hierarchy().llcContention(1).requests, 0u);
        if (hammered) {
            EXPECT_GT(sys.hierarchy().llcContention(0).queueDelay, 0u);
        }
        return res.cores[1].threads[0].cycles;
    };

    const Tick alone = probe_cycles(false, 8);
    const Tick contended = probe_cycles(true, 8);
    EXPECT_GT(contended, alone);
}

TEST(SystemTest, ContentionKnobsOffPreserveSoloLatencies)
{
    // llcPortBusy = llcMshrs = 0 must leave access latencies exactly
    // as the pre-System calibration assumed.
    SystemConfig cfg;
    System sys(cfg);
    Hierarchy &hier = sys.hierarchy();
    const MemAccessResult cold =
        hier.access(0, 0x1000, AccessType::Data, 0);
    const HierarchyConfig &h = hier.config();
    EXPECT_EQ(cold.latency,
              h.l1Latency + h.l2Latency + h.llcLatency + h.memLatency);
    EXPECT_EQ(cold.queueDelay, 0u);
    EXPECT_EQ(hier.llcContention(0).requests, 0u); // model off: untracked
}

// ---------------------------------------------------------------------
// Inclusive-LLC back-invalidation under multi-core sharing
// ---------------------------------------------------------------------

TEST(SystemTest, LlcEvictionBackInvalidatesEverySharingCore)
{
    // Two cores pull the same line into their private caches; evicting
    // it from the inclusive LLC must remove *both* private copies, not
    // just the one belonging to the core that brought it in last.
    SystemConfig cfg;
    cfg.numCores = 2;
    System sys(cfg);
    Hierarchy &hier = sys.hierarchy();

    const Addr shared = 0x9000;
    hier.access(0, shared, AccessType::Data, 0);
    hier.access(1, shared, AccessType::Data, 1);
    ASSERT_TRUE(hier.l1d(0).contains(shared));
    ASSERT_TRUE(hier.l1d(1).contains(shared));
    ASSERT_TRUE(hier.llcContains(shared));

    // Fill the line's LLC set from the spare direct client until the
    // shared line is evicted.
    const CoreId agent = static_cast<CoreId>(sys.numCores());
    const unsigned set = hier.llcSetIndex(shared);
    const unsigned slice = hier.llcSliceIndex(shared);
    const unsigned ways = hier.config().llcSlice.ways;
    unsigned filled = 0;
    Addr cand = 0xA0000000;
    while (filled < 2 * ways && hier.llcContains(shared)) {
        if (hier.llcSetIndex(cand) == set &&
            hier.llcSliceIndex(cand) == slice) {
            hier.accessDirect(agent, cand, 0);
            ++filled;
        }
        cand += kLineBytes;
    }

    EXPECT_FALSE(hier.llcContains(shared));
    EXPECT_FALSE(hier.l1d(0).contains(shared));
    EXPECT_FALSE(hier.l2(0).contains(shared));
    EXPECT_FALSE(hier.l1d(1).contains(shared));
    EXPECT_FALSE(hier.l2(1).contains(shared));
}

TEST(SystemTest, BackInvalidationDropsCoherenceDirectoryState)
{
    // Same scenario with the coherence model on: the directory's
    // sharer set for the evicted line must be dropped along with the
    // private copies.
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.hier.coherence.enabled = true;
    System sys(cfg);
    Hierarchy &hier = sys.hierarchy();

    const Addr shared = 0x9000;
    hier.access(0, shared, AccessType::Data, 0);
    hier.access(1, shared, AccessType::Data, 1);
    ASSERT_EQ(hier.coherenceDirectory().state(0, shared),
              MesiState::Shared);

    const CoreId agent = static_cast<CoreId>(sys.numCores());
    const unsigned set = hier.llcSetIndex(shared);
    const unsigned slice = hier.llcSliceIndex(shared);
    unsigned filled = 0;
    Addr cand = 0xA0000000;
    while (filled < 2 * hier.config().llcSlice.ways &&
           hier.llcContains(shared)) {
        if (hier.llcSetIndex(cand) == set &&
            hier.llcSliceIndex(cand) == slice) {
            hier.accessDirect(agent, cand, 0);
            ++filled;
        }
        cand += kLineBytes;
    }

    EXPECT_FALSE(hier.llcContains(shared));
    EXPECT_EQ(hier.coherenceDirectory().state(0, shared),
              MesiState::Invalid);
    EXPECT_EQ(hier.coherenceDirectory().state(1, shared),
              MesiState::Invalid);
}

// ---------------------------------------------------------------------
// The cross-core channels
// ---------------------------------------------------------------------

class CrossCoreChannelRecovers
    : public ::testing::TestWithParam<
          std::tuple<SchemeKind, CrossCoreChannelKind>>
{};

TEST_P(CrossCoreChannelRecovers, SecretComesThroughTheSharedLlc)
{
    const auto [scheme, kind] = GetParam();
    const std::vector<std::uint8_t> bits = randomBits(12, 123);

    CrossCoreChannelConfig cfg;
    cfg.scheme = scheme;
    cfg.attack.kind = kind;
    cfg.trialsPerBit = 1;

    const CrossCoreChannelResult res = runCrossCoreChannel(bits, cfg);
    EXPECT_TRUE(res.calibration.usable)
        << schemeName(scheme) << " closed the "
        << crossCoreChannelKindName(kind) << " channel";
    EXPECT_EQ(res.channel.bitErrors, 0u)
        << schemeName(scheme) << " over "
        << crossCoreChannelKindName(kind);
    EXPECT_EQ(res.channel.bitsSent, bits.size());
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndKinds, CrossCoreChannelRecovers,
    ::testing::Values(
        std::make_tuple(SchemeKind::Unsafe,
                        CrossCoreChannelKind::Occupancy),
        std::make_tuple(SchemeKind::InvisiSpecSpectre,
                        CrossCoreChannelKind::Occupancy),
        std::make_tuple(SchemeKind::SafeSpecWfb,
                        CrossCoreChannelKind::Occupancy),
        std::make_tuple(SchemeKind::MuonTrap,
                        CrossCoreChannelKind::Occupancy),
        std::make_tuple(SchemeKind::Unsafe,
                        CrossCoreChannelKind::Eviction)),
    [](const auto &info) {
        return "s" +
               std::to_string(
                   static_cast<int>(std::get<0>(info.param))) +
               (std::get<1>(info.param) ==
                        CrossCoreChannelKind::Occupancy
                    ? "_occupancy"
                    : "_eviction");
    });

TEST(CrossCoreChannelTest, InvisibleSpeculationClosesEvictionOnly)
{
    // The contrast at the heart of the cross-core story: InvisiSpec
    // hides the cache-state (eviction) channel but not the shared-
    // bandwidth (occupancy) channel.
    const std::vector<std::uint8_t> bits = randomBits(4, 1);

    CrossCoreChannelConfig cfg;
    cfg.scheme = SchemeKind::InvisiSpecSpectre;
    cfg.attack.kind = CrossCoreChannelKind::Eviction;
    EXPECT_FALSE(runCrossCoreChannel(bits, cfg).calibration.usable);

    cfg.attack.kind = CrossCoreChannelKind::Occupancy;
    EXPECT_TRUE(runCrossCoreChannel(bits, cfg).calibration.usable);
}

TEST(CrossCoreChannelTest, FenceAndDomDefensesCloseBothChannels)
{
    const std::vector<std::uint8_t> bits = randomBits(4, 1);
    for (SchemeKind scheme :
         {SchemeKind::FenceSpectre, SchemeKind::DomNonTso,
          SchemeKind::AdvancedDefense}) {
        for (CrossCoreChannelKind kind :
             {CrossCoreChannelKind::Occupancy,
              CrossCoreChannelKind::Eviction}) {
            CrossCoreChannelConfig cfg;
            cfg.scheme = scheme;
            cfg.attack.kind = kind;
            EXPECT_FALSE(
                runCrossCoreChannel(bits, cfg).calibration.usable)
                << schemeName(scheme) << " left the "
                << crossCoreChannelKindName(kind) << " channel open";
        }
    }
}

} // namespace
} // namespace specint
