/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace specint
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(4);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(6);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ReseedRestoresStream)
{
    Rng rng(9);
    const auto first = rng.next();
    rng.seed(9);
    EXPECT_EQ(rng.next(), first);
}

} // namespace
} // namespace specint
