/**
 * @file
 * Table 1 regeneration test: for every (gadget, ordering, scheme)
 * cell, the measured verdict must match the paper's Table 1 — except
 * for the three documented deviation cells, whose (stronger) measured
 * verdict is asserted explicitly so regressions are caught either way.
 */

#include <gtest/gtest.h>

#include "attack/matrix.hh"

namespace specint
{
namespace
{

struct CellParam
{
    GadgetKind g;
    OrderingKind o;
    SchemeKind s;
};

std::vector<CellParam>
allCells()
{
    std::vector<CellParam> out;
    for (const auto &[g, o] : tableOneCombos())
        for (SchemeKind s : allSchemes())
            out.push_back({g, o, s});
    return out;
}

class TableOne : public ::testing::TestWithParam<CellParam>
{};

TEST_P(TableOne, MeasuredMatchesPaper)
{
    const auto [g, o, s] = GetParam();
    const MatrixCell cell = evaluateCell(g, o, s);
    if (knownDeviation(g, o, s)) {
        // Documented deviations: the simulator finds a real leak the
        // paper's Table 1 marks safe (see EXPERIMENTS.md).
        EXPECT_TRUE(cell.vulnerable);
        EXPECT_FALSE(expectedVulnerable(g, o, s));
    } else {
        EXPECT_EQ(cell.vulnerable, expectedVulnerable(g, o, s))
            << gadgetName(g) << " / " << orderingName(o) << " / "
            << schemeName(s) << " sig0=" << cell.signal0
            << " sig1=" << cell.signal1;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, TableOne, ::testing::ValuesIn(allCells()),
    [](const auto &info) {
        std::string n = gadgetName(info.param.g) + "_" +
                        orderingName(info.param.o) + "_" +
                        schemeName(info.param.s);
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(TableOneShape, DefensesAreNeverVulnerable)
{
    for (const auto &[g, o] : tableOneCombos()) {
        for (SchemeKind s :
             {SchemeKind::FenceSpectre, SchemeKind::FenceFuturistic,
              SchemeKind::AdvancedDefense}) {
            EXPECT_FALSE(evaluateCell(g, o, s).vulnerable)
                << gadgetName(g) << "/" << orderingName(o) << "/"
                << schemeName(s);
        }
    }
}

TEST(TableOneShape, EveryAttackedSchemeFallsToSomething)
{
    // Paper §3.3.1: "Every invisible speculation design we have
    // evaluated is vulnerable to at least one of the attacks."
    for (SchemeKind s : attackedSchemes()) {
        bool any = false;
        for (const auto &[g, o] : tableOneCombos())
            any = any || evaluateCell(g, o, s).vulnerable;
        EXPECT_TRUE(any) << schemeName(s);
    }
}

} // namespace
} // namespace specint
