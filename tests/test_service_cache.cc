/**
 * @file
 * Tests of the sweep-service result cache (src/sim/service/cache.*):
 * canonical-key stability and sensitivity (every semantic input must
 * change the key), store/lookup round-trips through the wire codec,
 * and the corruption defenses — truncated, garbage, tampered and
 * version-skewed entries must all be rejected and recomputed, never
 * trusted.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/experiment/sweep.hh"
#include "sim/experiment/value.hh"
#include "sim/service/cache.hh"
#include "sim/service/wire.hh"

using namespace specint;
using namespace specint::experiment;
using namespace specint::service;

namespace fs = std::filesystem;

namespace
{

/** A scratch cache directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        path = fs::temp_directory_path() /
               ("specsim_cache_test_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(counter()++));
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    static int &counter()
    {
        static int n = 0;
        return n;
    }
};

JobSpec
baseSpec()
{
    JobSpec spec;
    spec.scenario = "table1";
    spec.trials = 3;
    spec.seed = 0xdeadbeefcafe1234ULL;
    spec.extra["bits"] = 8;
    spec.extra["warmup"] = 2;
    return spec;
}

SweepPoint
basePoint()
{
    SweepSpec sweep;
    sweep.axis("channel", {"dcache", "icache"})
        .axis("defense", {"none", "fence"});
    return sweep.expand()[1];
}

/** The entry file a key lands in (mirrors ResultCache's layout). */
fs::path
entryPathFor(const fs::path &root, const CacheKey &key)
{
    const std::string hex = key.hex();
    return root / "objects" / hex.substr(0, 2) /
           (hex.substr(2) + ".json");
}

std::vector<Row>
sampleRows()
{
    // One cell of every Value kind, including values a double cannot
    // represent (full-width uint64) and a real with display precision.
    Row r1{Value::str("dcache"), Value::integer(-42),
           Value::uinteger(0xffffffffffffffffULL),
           Value::real(0.12345678901234567, 4), Value::boolean(true)};
    Row r2{Value::str("icache"), Value::integer(7),
           Value::uinteger(1), Value::real(-1.5e-300, 2),
           Value::boolean(false)};
    return {r1, r2};
}

/** Deep row equality via the deterministic wire encoding. */
void
expectRowsEqual(const std::vector<Row> &a, const std::vector<Row> &b)
{
    EXPECT_EQ(encodeRows(a).dump(), encodeRows(b).dump());
}

} // namespace

// --------------------------------------------------------------------------
// fnv1a64 / key derivation
// --------------------------------------------------------------------------

TEST(Fnv1a64, MatchesReferenceVectors)
{
    // Classic FNV-1a test vectors (64-bit, default offset basis).
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, DistinctBasesDecorrelate)
{
    const std::string s = "same input";
    EXPECT_NE(fnv1a64(s), fnv1a64(s, 0x9ae16a3b2f90404fULL));
}

TEST(CacheKey, StableAcrossCalls)
{
    const CacheKey a =
        makeCacheKey(baseSpec(), 5, 0x123456789abcdef0ULL,
                     basePoint(), "fp0");
    const CacheKey b =
        makeCacheKey(baseSpec(), 5, 0x123456789abcdef0ULL,
                     basePoint(), "fp0");
    EXPECT_EQ(a.canonical, b.canonical);
    EXPECT_EQ(a.hi, b.hi);
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hex(), b.hex());
    EXPECT_EQ(a.hex().size(), 32u);
}

TEST(CacheKey, EverySemanticInputChangesTheKey)
{
    const CacheKey base = makeCacheKey(baseSpec(), 5, 99, basePoint(),
                                       "fp0");

    JobSpec s1 = baseSpec();
    s1.scenario = "fig8";
    JobSpec s2 = baseSpec();
    s2.trials = 4;
    JobSpec s3 = baseSpec();
    s3.seed ^= 1;
    JobSpec s4 = baseSpec();
    s4.extra["bits"] = 9;
    JobSpec s5 = baseSpec();
    s5.extra["newflag"] = 0;

    const CacheKey variants[] = {
        makeCacheKey(s1, 5, 99, basePoint(), "fp0"),
        makeCacheKey(s2, 5, 99, basePoint(), "fp0"),
        makeCacheKey(s3, 5, 99, basePoint(), "fp0"),
        makeCacheKey(s4, 5, 99, basePoint(), "fp0"),
        makeCacheKey(s5, 5, 99, basePoint(), "fp0"),
        // Point index, point seed, fingerprint.
        makeCacheKey(baseSpec(), 6, 99, basePoint(), "fp0"),
        makeCacheKey(baseSpec(), 5, 100, basePoint(), "fp0"),
        makeCacheKey(baseSpec(), 5, 99, basePoint(), "fp1"),
    };
    for (const CacheKey &v : variants) {
        EXPECT_NE(v.canonical, base.canonical);
        EXPECT_NE(v.hex(), base.hex());
    }
}

TEST(CacheKey, AxisValuesAreEncoded)
{
    SweepSpec sweep;
    sweep.axis("channel", {"dcache", "icache"});
    const std::vector<SweepPoint> pts = sweep.expand();
    const CacheKey a =
        makeCacheKey(baseSpec(), 0, 99, pts[0], "fp0");
    const CacheKey b =
        makeCacheKey(baseSpec(), 0, 99, pts[1], "fp0");
    EXPECT_NE(a.canonical, b.canonical);
    EXPECT_NE(a.canonical.find("dcache"), std::string::npos);
}

// --------------------------------------------------------------------------
// ResultCache
// --------------------------------------------------------------------------

TEST(ResultCache, StoreLookupRoundTripsEveryValueKind)
{
    TempDir tmp;
    ResultCache cache(tmp.path.string());
    ASSERT_TRUE(cache.enabled());

    const CacheKey key =
        makeCacheKey(baseSpec(), 0, 1, basePoint(), "fp0");
    const std::vector<Row> rows = sampleRows();
    const std::string legacy = "legacy text\nwith two lines\n";

    std::vector<Row> out;
    std::string out_legacy;
    EXPECT_FALSE(cache.lookup(key, out, out_legacy));
    cache.store(key, rows, legacy);
    ASSERT_TRUE(cache.lookup(key, out, out_legacy));
    expectRowsEqual(out, rows);
    EXPECT_EQ(out_legacy, legacy);

    // Exact text rendering survives (what CSV byte-identity needs).
    EXPECT_EQ(out[0][3].text(), rows[0][3].text());

    const CacheStats st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.stores, 1u);
    EXPECT_EQ(st.corrupt, 0u);
}

TEST(ResultCache, SecondHandleSeesPersistedEntries)
{
    TempDir tmp;
    const CacheKey key =
        makeCacheKey(baseSpec(), 2, 3, basePoint(), "fp0");
    {
        ResultCache writer(tmp.path.string());
        writer.store(key, sampleRows(), "L");
        writer.flushIndex("fp0");
    }
    ResultCache reader(tmp.path.string());
    std::vector<Row> out;
    std::string legacy;
    ASSERT_TRUE(reader.lookup(key, out, legacy));
    expectRowsEqual(out, sampleRows());
    EXPECT_TRUE(fs::exists(tmp.path / "index.json"));
}

TEST(ResultCache, GarbageEntryIsRejectedAndRecomputable)
{
    TempDir tmp;
    ResultCache cache(tmp.path.string());
    const CacheKey key =
        makeCacheKey(baseSpec(), 0, 1, basePoint(), "fp0");
    const fs::path path = entryPathFor(tmp.path, key);
    fs::create_directories(path.parent_path());
    std::ofstream(path) << "this is not json {";

    std::vector<Row> out;
    std::string legacy;
    EXPECT_FALSE(cache.lookup(key, out, legacy));
    EXPECT_EQ(cache.stats().corrupt, 1u);

    // The normal store/lookup path recovers.
    cache.store(key, sampleRows(), "L");
    EXPECT_TRUE(cache.lookup(key, out, legacy));
}

TEST(ResultCache, TruncatedEntryIsRejected)
{
    TempDir tmp;
    ResultCache cache(tmp.path.string());
    const CacheKey key =
        makeCacheKey(baseSpec(), 0, 1, basePoint(), "fp0");
    cache.store(key, sampleRows(), "L");

    const fs::path path = entryPathFor(tmp.path, key);
    ASSERT_TRUE(fs::exists(path));
    const auto size = fs::file_size(path);
    fs::resize_file(path, size / 2);

    std::vector<Row> out;
    std::string legacy;
    EXPECT_FALSE(cache.lookup(key, out, legacy));
    EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST(ResultCache, TamperedPayloadFailsChecksum)
{
    TempDir tmp;
    ResultCache cache(tmp.path.string());
    const CacheKey key =
        makeCacheKey(baseSpec(), 0, 1, basePoint(), "fp0");
    cache.store(key, sampleRows(), "authentic");

    // Flip the legacy payload without recomputing the checksum: a
    // well-formed but tampered entry must not be served.
    const fs::path path = entryPathFor(tmp.path, key);
    std::ifstream in(path);
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    const std::string from = "authentic";
    const std::string to = "tampered!";
    body.replace(body.find(from), from.size(), to);
    std::ofstream(path) << body;

    std::vector<Row> out;
    std::string legacy;
    EXPECT_FALSE(cache.lookup(key, out, legacy));
    EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST(ResultCache, WrongKeyInEntryIsRejected)
{
    // Simulates a 128-bit address collision: the entry at the probed
    // path embeds a different canonical key and must be treated as a
    // miss, never aliased.
    TempDir tmp;
    ResultCache cache(tmp.path.string());
    const CacheKey stored =
        makeCacheKey(baseSpec(), 0, 1, basePoint(), "fp0");
    cache.store(stored, sampleRows(), "L");

    CacheKey probe = stored; // same path, different canonical string
    probe.canonical += ";different";
    std::vector<Row> out;
    std::string legacy;
    EXPECT_FALSE(cache.lookup(probe, out, legacy));
    EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST(ResultCache, UnwritableRootDegradesToDisabled)
{
    ResultCache cache("/dev/null/not_a_directory");
    EXPECT_FALSE(cache.enabled());
    const CacheKey key =
        makeCacheKey(baseSpec(), 0, 1, basePoint(), "fp0");
    std::vector<Row> out;
    std::string legacy;
    EXPECT_FALSE(cache.lookup(key, out, legacy)); // miss, no crash
    cache.store(key, sampleRows(), "L");          // dropped, no crash
    cache.flushIndex("fp0");
    EXPECT_EQ(cache.stats().stores, 0u);
}

TEST(ResultCache, FingerprintChangeMissesOldEntries)
{
    // The end-to-end invalidation story: same sweep, new build
    // fingerprint -> different key -> miss (stale results are never
    // served across code changes).
    TempDir tmp;
    ResultCache cache(tmp.path.string());
    const CacheKey old_key =
        makeCacheKey(baseSpec(), 0, 1, basePoint(), "fp-old");
    cache.store(old_key, sampleRows(), "L");

    const CacheKey new_key =
        makeCacheKey(baseSpec(), 0, 1, basePoint(), "fp-new");
    std::vector<Row> out;
    std::string legacy;
    EXPECT_FALSE(cache.lookup(new_key, out, legacy));
    EXPECT_TRUE(cache.lookup(old_key, out, legacy));
}

TEST(ResultCache, ConcurrentWritersNeverLoseIndexUpdates)
{
    // Multiple daemons may share one --cache-dir (a fleet on one
    // host). Object files are content-addressed and rename-published,
    // but index.json is a read-merge-write — without the flock it is
    // a lost-update race. Hammer it: several forked writers each
    // store distinct entries and flush concurrently; the final index
    // must account for every store.
    constexpr int kWriters = 8;
    constexpr int kStoresPerWriter = 4;

    TempDir tmp;
    std::vector<pid_t> children;
    for (int w = 0; w < kWriters; ++w) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ResultCache cache(tmp.path.string());
            for (int s = 0; s < kStoresPerWriter; ++s) {
                // Distinct (writer, store) -> distinct key.
                const CacheKey key = makeCacheKey(
                    baseSpec(),
                    static_cast<std::size_t>(w * kStoresPerWriter +
                                             s),
                    static_cast<std::uint64_t>(w + 1), basePoint(),
                    "fp-mp");
                cache.store(key, sampleRows(), "L");
            }
            cache.flushIndex("fp-mp");
            ::_exit(::testing::Test::HasFailure() ? 1 : 0);
        }
        children.push_back(pid);
    }
    for (const pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0);
    }

    std::ifstream in(tmp.path / "index.json");
    ASSERT_TRUE(in.good());
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    Json index;
    ASSERT_TRUE(Json::parse(body, index)) << body;
    EXPECT_EQ(index.getU64("stores"),
              static_cast<std::uint64_t>(kWriters) *
                  kStoresPerWriter)
        << body;

    // Every entry is individually readable from a fresh handle.
    ResultCache reader(tmp.path.string());
    for (int w = 0; w < kWriters; ++w)
        for (int s = 0; s < kStoresPerWriter; ++s) {
            const CacheKey key = makeCacheKey(
                baseSpec(),
                static_cast<std::size_t>(w * kStoresPerWriter + s),
                static_cast<std::uint64_t>(w + 1), basePoint(),
                "fp-mp");
            std::vector<Row> out;
            std::string legacy;
            EXPECT_TRUE(reader.lookup(key, out, legacy))
                << "writer " << w << " store " << s;
        }
}
