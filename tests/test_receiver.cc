/**
 * @file
 * Receiver tests: the QLRU replacement-state receiver (§4.2.2) must
 * decode synthetic access orders injected straight into the LLC, and
 * the Flush+Reload receiver must detect line presence.
 */

#include <gtest/gtest.h>

#include "attack/receiver.hh"
#include "cpu/core.hh"

namespace specint
{
namespace
{

class QlruReceiverTest : public ::testing::Test
{
  protected:
    QlruReceiverTest()
        : hier(HierarchyConfig::small()), attacker(hier, 1),
          a(0x01000000),
          b(findCongruentAddr(hier, a, 0x40000000))
    {}

    /** Victim-side access through the victim core's private caches. */
    void victimAccess(Addr addr)
    {
        hier.access(0, addr, AccessType::Data, 0);
    }

    Hierarchy hier;
    AttackerAgent attacker;
    Addr a;
    Addr b;
};

TEST_F(QlruReceiverTest, DecodesABOrder)
{
    QlruReceiver recv(hier, attacker, a, b);
    recv.prime();
    victimAccess(a);
    victimAccess(b);
    EXPECT_EQ(recv.decode(), OrderDecode::AB);
}

TEST_F(QlruReceiverTest, DecodesBAOrder)
{
    QlruReceiver recv(hier, attacker, a, b);
    recv.prime();
    victimAccess(b);
    victimAccess(a);
    EXPECT_EQ(recv.decode(), OrderDecode::BA);
}

TEST_F(QlruReceiverTest, RepeatedTrialsStayCorrect)
{
    QlruReceiver recv(hier, attacker, a, b);
    for (unsigned t = 0; t < 20; ++t) {
        const bool ab = (t % 3) != 0;
        recv.prime();
        victimAccess(ab ? a : b);
        victimAccess(ab ? b : a);
        EXPECT_EQ(recv.decode(),
                  ab ? OrderDecode::AB : OrderDecode::BA)
            << "trial " << t;
    }
}

TEST_F(QlruReceiverTest, NoVictimAccessIsUnclear)
{
    QlruReceiver recv(hier, attacker, a, b);
    recv.prime();
    // Victim never ran: A survives in the set (B was never inserted),
    // or both miss; either way the decode must not report an order
    // confidently wrong. BA (A resident, B absent) is the expected
    // no-signal artefact; Unclear is also acceptable.
    const OrderDecode d = recv.decode();
    EXPECT_NE(d, OrderDecode::AB);
}

TEST_F(QlruReceiverTest, EvictionSetsAreDisjointAndCongruent)
{
    QlruReceiver recv(hier, attacker, a, b);
    const unsigned assoc = hier.config().llcSlice.ways;
    EXPECT_EQ(recv.evs1().size(), assoc - 1);
    EXPECT_EQ(recv.evs2().size(), assoc - 1);
    for (Addr x : recv.evs1()) {
        EXPECT_EQ(hier.llcSetIndex(x), recv.setIndex());
        for (Addr y : recv.evs2())
            EXPECT_NE(x, y);
    }
}

TEST_F(QlruReceiverTest, PrimeEvictsStaleVictimCopies)
{
    // After a victim run pulled A into its private L1, the next prime
    // must force the victim back to the LLC (Flush+Reload property).
    victimAccess(a);
    ASSERT_TRUE(hier.l1d(0).contains(a));
    QlruReceiver recv(hier, attacker, a, b);
    recv.prime();
    EXPECT_FALSE(hier.l1d(0).contains(a));
    EXPECT_FALSE(hier.l1d(0).contains(b));
    EXPECT_TRUE(hier.llcContains(a)); // A is staged in the LLC
    EXPECT_FALSE(hier.llcContains(b));
}

TEST(FlushReload, DetectsPresence)
{
    Hierarchy hier(HierarchyConfig::small());
    AttackerAgent attacker(hier, 1);
    const Addr target = 0x03000000;
    FlushReloadReceiver recv(hier, attacker, target);

    recv.flushTarget();
    EXPECT_FALSE(recv.probePresent());
    // probePresent itself filled the line; re-flush and verify again.
    recv.flushTarget();
    hier.access(0, target, AccessType::Instr, 0); // victim fetch
    EXPECT_TRUE(recv.probePresent());
}

} // namespace
} // namespace specint
