/**
 * @file
 * Unit tests for the pooled object arena (sim/arena.hh): construction
 * and destruction bookkeeping, pointer stability across chunk growth,
 * freelist recycling, and the address-ordered reset that makes
 * allocation order — and therefore simulation results — independent
 * of pool history.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "sim/arena.hh"

namespace specint
{
namespace
{

/** Instrumented payload: counts ctor/dtor calls, owns heap memory so
 *  ASan flags any double-destroy or leak through the arena. */
struct Tracked
{
    static int liveInstances;

    explicit Tracked(std::uint64_t v = 0)
        : value(std::to_string(v)), raw(v)
    {
        ++liveInstances;
    }
    Tracked(const Tracked &) = delete;
    Tracked &operator=(const Tracked &) = delete;
    ~Tracked() { --liveInstances; }

    std::string value;
    std::uint64_t raw;
};

int Tracked::liveInstances = 0;

class ArenaTest : public ::testing::Test
{
  protected:
    void SetUp() override { Tracked::liveInstances = 0; }
};

TEST_F(ArenaTest, CreateConstructsAndDestroyDestructs)
{
    Arena<Tracked> arena(4);
    EXPECT_EQ(arena.live(), 0u);
    EXPECT_EQ(arena.capacity(), 0u);

    Tracked *a = arena.create(7);
    Tracked *b = arena.create(9);
    EXPECT_EQ(Tracked::liveInstances, 2);
    EXPECT_EQ(arena.live(), 2u);
    EXPECT_EQ(arena.capacity(), 4u);
    EXPECT_EQ(a->raw, 7u);
    EXPECT_EQ(b->value, "9");

    arena.destroy(a);
    EXPECT_EQ(Tracked::liveInstances, 1);
    EXPECT_EQ(arena.live(), 1u);
    arena.destroy(b);
    EXPECT_EQ(Tracked::liveInstances, 0);
    EXPECT_EQ(arena.live(), 0u);
}

TEST_F(ArenaTest, PointersStayValidAcrossChunkGrowth)
{
    Arena<Tracked> arena(2); // tiny chunks force repeated growth
    std::vector<Tracked *> objs;
    for (std::uint64_t i = 0; i < 100; ++i)
        objs.push_back(arena.create(i));
    EXPECT_GE(arena.capacity(), 100u);

    // Every pointer handed out before the growth still reads back its
    // own payload (no reallocation/move of earlier chunks).
    for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(objs[i]->raw, i);
        EXPECT_EQ(objs[i]->value, std::to_string(i));
    }

    // All distinct slots.
    std::set<Tracked *> unique(objs.begin(), objs.end());
    EXPECT_EQ(unique.size(), objs.size());

    for (Tracked *p : objs)
        arena.destroy(p);
    EXPECT_EQ(Tracked::liveInstances, 0);
}

TEST_F(ArenaTest, DestroyedSlotsAreRecycledWithoutGrowth)
{
    Arena<Tracked> arena(8);
    std::vector<Tracked *> objs;
    for (std::uint64_t i = 0; i < 8; ++i)
        objs.push_back(arena.create(i));
    const std::size_t cap = arena.capacity();

    // Steady-state churn: destroy/create pairs must reuse pooled
    // slots, never grow.
    for (std::uint64_t round = 0; round < 64; ++round) {
        arena.destroy(objs[round % 8]);
        objs[round % 8] = arena.create(1000 + round);
        EXPECT_EQ(arena.capacity(), cap);
    }
    EXPECT_EQ(arena.live(), 8u);

    for (Tracked *p : objs)
        arena.destroy(p);
}

TEST_F(ArenaTest, ResetDestroysEverythingAndKeepsCapacity)
{
    Arena<Tracked> arena(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        arena.create(i);
    EXPECT_EQ(Tracked::liveInstances, 10);
    const std::size_t cap = arena.capacity();

    arena.reset();
    EXPECT_EQ(Tracked::liveInstances, 0);
    EXPECT_EQ(arena.live(), 0u);
    EXPECT_EQ(arena.capacity(), cap);

    // The arena is fully usable again.
    Tracked *p = arena.create(42);
    EXPECT_EQ(p->raw, 42u);
    arena.destroy(p);
}

TEST_F(ArenaTest, AllocationOrderAfterResetIsHistoryIndependent)
{
    // After reset() the arena must hand out the same slot sequence a
    // fresh arena would, regardless of the churn that preceded it:
    // simulation runs may not depend on what a previous run did to
    // the pool.
    Arena<Tracked> arena(4);

    // The fresh sequence (allocation order == address order within
    // each chunk, chunks in creation order).
    std::vector<Tracked *> fresh;
    for (std::uint64_t i = 0; i < 12; ++i)
        fresh.push_back(arena.create(i));

    // Scrambled churn, then reset.
    for (std::uint64_t i : {7, 2, 11, 0, 5})
        arena.destroy(fresh[i]);
    for (int i = 0; i < 5; ++i)
        arena.create(100 + i);
    arena.reset();

    // The replay must revisit exactly the fresh slot sequence.
    for (int i = 0; i < 12; ++i) {
        EXPECT_EQ(arena.create(200 + i), fresh[i])
            << "slot order diverged at allocation " << i;
    }
    arena.reset();
}

TEST_F(ArenaTest, ArenaDestructorReleasesLiveObjects)
{
    {
        Arena<Tracked> arena(4);
        for (std::uint64_t i = 0; i < 6; ++i)
            arena.create(i);
        EXPECT_EQ(Tracked::liveInstances, 6);
    } // ~Arena must run the remaining destructors (ASan: no leak)
    EXPECT_EQ(Tracked::liveInstances, 0);
}

} // namespace
} // namespace specint
