#!/usr/bin/env python3
"""Structural validator for specsim --trace-out files.

Checks that an exported trace is well-formed Chrome trace-event JSON
of the shape specsim emits (and Perfetto loads):

- top level is an object with a "traceEvents" array;
- every event is an object with a string "ph" in {X, i, M} and
  integer "pid"/"ts" fields ("tid" too for non-process metadata);
- complete events (ph=X) carry a non-negative integer "dur";
- instant events (ph=i) carry the scope field "s";
- metadata events (ph=M) are process_name/thread_name records whose
  args carry a non-empty "name";
- within each (pid, tid) pair, timestamps are monotonically
  non-decreasing — the renderer sorts by (pid, track, ts), so any
  violation means the renderer (or a post-processing step) broke.

Exit status: 0 = valid, 1 = invalid, 2 = usage/IO error.
"""

import json
import sys


def fail(msg):
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(doc):
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' must be an array")

    counts = {"X": 0, "i": 0, "M": 0}
    last_ts = {}  # (pid, tid) -> last timestamp seen
    for n, ev in enumerate(events):
        where = f"event {n}"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in counts:
            fail(f"{where}: ph {ph!r} not one of X/i/M")
        counts[ph] += 1
        if not isinstance(ev.get("pid"), int):
            fail(f"{where}: missing integer 'pid'")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing non-empty 'name'")

        if ph == "M":
            if name not in ("process_name", "thread_name"):
                fail(f"{where}: unknown metadata record {name!r}")
            args = ev.get("args")
            if (not isinstance(args, dict)
                    or not isinstance(args.get("name"), str)
                    or not args["name"]):
                fail(f"{where}: metadata args must name the "
                     f"{name.split('_')[0]}")
            if name == "thread_name" and not isinstance(
                    ev.get("tid"), int):
                fail(f"{where}: thread_name without integer 'tid'")
            continue

        ts = ev.get("ts")
        if not isinstance(ts, int) or ts < 0:
            fail(f"{where}: missing non-negative integer 'ts'")
        if not isinstance(ev.get("tid"), int):
            fail(f"{where}: missing integer 'tid'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                fail(f"{where}: complete event without non-negative "
                     "'dur'")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            fail(f"{where}: instant event without scope 's'")

        key = (ev["pid"], ev["tid"])
        if key in last_ts and ts < last_ts[key]:
            fail(f"{where}: ts {ts} < {last_ts[key]} on pid/tid "
                 f"{key} — track not monotonic")
        last_ts[key] = ts

    return counts, len(last_ts)


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} TRACE.json", file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    counts, tracks = validate(doc)
    total = sum(counts.values())
    print(f"{path}: valid — {total} events "
          f"({counts['X']} complete, {counts['i']} instant, "
          f"{counts['M']} metadata) on {tracks} track(s)")


if __name__ == "__main__":
    main()
