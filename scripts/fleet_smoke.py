#!/usr/bin/env python3
"""Smoke-test the multi-daemon sweep fleet end to end.

Boots real `specsim_serve` daemons on ephemeral local TCP ports and
drives them through `specsim_bench --connect`, asserting the fleet
contract:

1. Byte identity: a sweep sharded across two daemons produces exactly
   the serial run's CSV — for the main scenario and an ablation.
2. Failover: SIGKILL of one daemon mid-sweep (after the first row has
   streamed) still completes, still byte-identical, and the driver
   reports at least one endpoint death.
3. Weak scaling (optional, --min-scaling): a cold 2-daemon fleet run
   must be at least N times faster than a cold 1-daemon run of the
   same sweep. The gate only applies when the machine exposes >= 2
   CPUs — on a single core two daemons time-slice the same core and
   wall-time parity is the correct result. With --bench-out the
   measured times are written as a JSON block for the benchmark
   trajectory.

Exit status: 0 = pass, 1 = contract violation, 2 = usage error.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

DEATHS_RE = __import__("re").compile(r"(\d+) endpoint deaths")


class Daemon:
    """One specsim_serve child on an ephemeral local TCP port."""

    def __init__(self, serve, tmp, name, workers, cache_dir=None):
        self.port_file = os.path.join(tmp, f"{name}.port")
        cmd = [serve, "--tcp", "127.0.0.1:0",
               "--port-file", self.port_file,
               "--workers", str(workers)]
        if cache_dir:
            cmd += ["--cache-dir", cache_dir]
        self.log_path = os.path.join(tmp, f"{name}.log")
        self.log = open(self.log_path, "w")
        self.proc = subprocess.Popen(cmd, stdout=self.log,
                                     stderr=self.log)
        self.endpoint = None

    def wait_ready(self, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                with open(self.port_file) as f:
                    port = int(f.read().strip())
                if port:
                    self.endpoint = f"127.0.0.1:{port}"
                    return self.endpoint
            except (OSError, ValueError):
                pass
            if self.proc.poll() is not None:
                break
            time.sleep(0.02)
        print(f"error: daemon never became ready "
              f"(see {self.log_path})", file=sys.stderr)
        sys.exit(1)

    def kill9(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def stop(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.kill9()
        self.log.close()


def run_bench(bench, scenario, out_path, connect=None, wait=True):
    cmd = [bench, scenario, "--csv", "--out", out_path]
    if connect:
        cmd += ["--connect", connect]
    t0 = time.monotonic()
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    if not wait:
        return proc, t0
    stdout, stderr = proc.communicate()
    elapsed = time.monotonic() - t0
    if proc.returncode != 0:
        print(f"error: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        sys.stderr.write(stderr)
        sys.exit(1)
    return stderr, elapsed


def read_file(path):
    with open(path, "rb") as f:
        return f.read()


def expect_identical(name, serial_csv, fleet_csv):
    if read_file(serial_csv) == read_file(fleet_csv):
        print(f"  OK {name}: fleet CSV is byte-identical to serial")
        return
    print(f"FAIL {name}: fleet CSV differs from serial run",
          file=sys.stderr)
    sys.exit(1)


def count_data_rows(path):
    try:
        with open(path) as f:
            return max(0, sum(1 for _ in f) - 1)  # minus header
    except OSError:
        return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("bench", help="path to the specsim_bench binary")
    ap.add_argument("serve", help="path to the specsim_serve binary")
    ap.add_argument("--scenario", default="fig11",
                    help="main (heavyweight) scenario")
    ap.add_argument("--ablation", default="ablation_rs",
                    help="second scenario for the identity check")
    ap.add_argument("--workers", type=int, default=1,
                    help="worker processes per daemon")
    ap.add_argument("--min-scaling", type=float, default=0.0,
                    help="required 1-daemon/2-daemon cold wall-time "
                         "ratio (0 = don't check timing)")
    ap.add_argument("--bench-out", metavar="PATH",
                    help="write measured fleet times as JSON")
    ap.add_argument("--artifacts", metavar="DIR",
                    help="keep CSVs and daemon logs under DIR")
    args = ap.parse_args()

    tmp = tempfile.mkdtemp(prefix="specsim_fleet_smoke_")
    daemons = []
    try:
        rc = run_phases(args, tmp, daemons)
    finally:
        for d in daemons:
            d.stop()
        if args.artifacts:
            os.makedirs(args.artifacts, exist_ok=True)
            for name in os.listdir(tmp):
                if name.endswith((".csv", ".log", ".json")):
                    shutil.copy(os.path.join(tmp, name),
                                args.artifacts)
        shutil.rmtree(tmp, ignore_errors=True)
    sys.exit(rc)


def run_phases(args, tmp, daemons):
    def start(name, cache=None):
        d = Daemon(args.serve, tmp, name, args.workers, cache)
        daemons.append(d)
        d.wait_ready()
        return d

    # --- Phase 1: serial baselines.
    serial = {}
    for sc in (args.scenario, args.ablation):
        serial[sc] = os.path.join(tmp, f"serial_{sc}.csv")
        _, t = run_bench(args.bench, sc, serial[sc])
        print(f"serial {sc}: {t:.2f}s")

    # --- Phase 2: two-daemon identity on both scenarios.
    a = start("ident_a", os.path.join(tmp, "cache_a"))
    b = start("ident_b", os.path.join(tmp, "cache_b"))
    fleet_ep = f"{a.endpoint},{b.endpoint}"
    for sc in (args.scenario, args.ablation):
        out = os.path.join(tmp, f"fleet_{sc}.csv")
        stderr, t = run_bench(args.bench, sc, out, connect=fleet_ep)
        print(f"fleet  {sc}: {t:.2f}s over {fleet_ep}")
        expect_identical(f"2-daemon {sc}", serial[sc], out)
    a.stop()
    b.stop()

    # --- Phase 3: SIGKILL failover mid-sweep (cold daemons so every
    # point actually executes).
    a = start("kill_a")
    b = start("kill_b")
    out = os.path.join(tmp, f"failover_{args.scenario}.csv")
    proc, t0 = run_bench(args.bench, args.scenario, out,
                         connect=f"{a.endpoint},{b.endpoint}",
                         wait=False)
    # Wait until the stream is provably mid-sweep, then kill B.
    deadline = time.monotonic() + 60
    while count_data_rows(out) < 1:
        if proc.poll() is not None or time.monotonic() > deadline:
            print("error: sweep finished or stalled before the kill "
                  "could be injected", file=sys.stderr)
            return 1
        time.sleep(0.01)
    b.kill9()
    print(f"  killed daemon B after "
          f"{time.monotonic() - t0:.2f}s / {count_data_rows(out)} "
          f"rows")
    stdout, stderr = proc.communicate(timeout=300)
    if proc.returncode != 0:
        print("FAIL failover: bench exited "
              f"{proc.returncode}\n{stderr}", file=sys.stderr)
        return 1
    m = DEATHS_RE.search(stderr)
    if not m or int(m.group(1)) < 1:
        print("FAIL failover: driver reported no endpoint death\n"
              + stderr, file=sys.stderr)
        return 1
    expect_identical("SIGKILL failover", serial[args.scenario], out)
    a.stop()

    # --- Phase 4: cold weak scaling, 1 vs 2 daemons.
    one = start("scale_one", os.path.join(tmp, "cache_s1"))
    out1 = os.path.join(tmp, "scale_one.csv")
    _, t1 = run_bench(args.bench, args.scenario, out1,
                      connect=one.endpoint)
    one.stop()

    sa = start("scale_two_a", os.path.join(tmp, "cache_s2a"))
    sb = start("scale_two_b", os.path.join(tmp, "cache_s2b"))
    out2 = os.path.join(tmp, "scale_two.csv")
    _, t2 = run_bench(args.bench, args.scenario, out2,
                      connect=f"{sa.endpoint},{sb.endpoint}")
    sa.stop()
    sb.stop()
    expect_identical("weak-scaling fleet", serial[args.scenario],
                     out2)

    scaling = t1 / t2 if t2 > 0 else float("inf")
    cores = os.cpu_count() or 1
    print(f"weak scaling ({args.scenario}, {args.workers} worker(s) "
          f"per daemon, {cores} CPU(s)): 1 daemon {t1:.2f}s, "
          f"2 daemons {t2:.2f}s -> {scaling:.2f}x")

    if args.bench_out:
        doc = {
            "schema": "specsim-fleet-bench-v1",
            "scenario": args.scenario,
            "workers_per_daemon": args.workers,
            "cores": cores,
            "one_daemon_s": round(t1, 4),
            "two_daemon_s": round(t2, 4),
            "scaling": round(scaling, 4),
        }
        with open(args.bench_out, "w") as f:
            json.dump(doc, f, indent=1)
            f.write("\n")
        print(f"wrote {args.bench_out}")

    if args.min_scaling > 0:
        if cores < 2:
            print(f"SKIP scaling gate: only {cores} CPU visible; "
                  "two daemons time-slice one core, parity expected")
        elif scaling < args.min_scaling:
            print(f"FAIL scaling: {scaling:.2f}x < required "
                  f"{args.min_scaling:.2f}x", file=sys.stderr)
            return 1

    print("fleet smoke: all phases passed")
    return 0


if __name__ == "__main__":
    main()
