# Generates specsim_fingerprint.inc: a C string literal holding a hash
# of every simulator source file. Run as a build-time custom command
# (cmake -DSRC_DIR=... -DOUT_FILE=... -P gen_fingerprint.cmake), so the
# fingerprint tracks source *contents*, not just the configure-time
# file list. The sweep-service result cache bakes this string into
# every cache key: any code change produces a new fingerprint and
# therefore misses on every stale entry (see docs/experiments.md,
# "Sweep service & result cache").
#
# The hash is order-stable: files are hashed individually, then the
# sorted "path=sha1" lines are hashed together.

if(NOT DEFINED SRC_DIR OR NOT DEFINED OUT_FILE)
  message(FATAL_ERROR "usage: cmake -DSRC_DIR=<repo> -DOUT_FILE=<inc> -P gen_fingerprint.cmake")
endif()

file(GLOB_RECURSE FP_SOURCES
  ${SRC_DIR}/src/*.cc
  ${SRC_DIR}/src/*.hh
  ${SRC_DIR}/bench/scenarios/*.cc
  ${SRC_DIR}/bench/scenarios/*.hh)
list(SORT FP_SOURCES)

set(FP_LINES "")
foreach(f ${FP_SOURCES})
  file(SHA1 ${f} FILE_HASH)
  file(RELATIVE_PATH REL ${SRC_DIR} ${f})
  string(APPEND FP_LINES "${REL}=${FILE_HASH}\n")
endforeach()
string(SHA1 FP_HASH "${FP_LINES}")

set(CONTENT "\"${FP_HASH}\"\n")

# Only rewrite on change so the fingerprint TU is not recompiled on
# every build.
set(OLD_CONTENT "")
if(EXISTS ${OUT_FILE})
  file(READ ${OUT_FILE} OLD_CONTENT)
endif()
if(NOT OLD_CONTENT STREQUAL CONTENT)
  file(WRITE ${OUT_FILE} "${CONTENT}")
endif()
