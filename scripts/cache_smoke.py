#!/usr/bin/env python3
"""Smoke-test the sweep-service result cache end to end.

Runs one scenario twice through `specsim_bench --cache-dir` (cold,
then warm) and asserts the cache contract:

1. Byte identity: the warm CSV equals the cold CSV exactly — cached
   results must be indistinguishable from recomputed ones.
2. Hit accounting: the cold run misses and stores every point, the
   warm run hits every point (no misses, no corrupt entries), as
   reported by the driver's `[cache] ...` stderr line.
3. Optional speedup floor (--min-speedup): the warm run must be at
   least N times faster than the cold run. Only meaningful for
   scenarios whose cold run is long enough to time reliably (fig11);
   pass 0 to skip for fast scenarios (table1).

Exit status: 0 = pass, 1 = contract violation, 2 = usage error.
"""

import argparse
import re
import subprocess
import sys
import tempfile
import time

CACHE_LINE = re.compile(
    r"\[cache\] dir=\S+ hits=(\d+) misses=(\d+) stores=(\d+) "
    r"corrupt=(\d+)")


def run_once(bench, scenario, cache_dir, extra_args):
    cmd = [bench, scenario, "--csv", "--cache-dir", cache_dir]
    cmd += extra_args
    t0 = time.monotonic()
    proc = subprocess.run(cmd, capture_output=True, text=True)
    elapsed = time.monotonic() - t0
    if proc.returncode != 0:
        print(f"error: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        sys.stderr.write(proc.stderr)
        sys.exit(1)
    m = CACHE_LINE.search(proc.stderr)
    if not m:
        print("error: no '[cache] ...' accounting line on stderr",
              file=sys.stderr)
        sys.stderr.write(proc.stderr)
        sys.exit(1)
    stats = dict(zip(("hits", "misses", "stores", "corrupt"),
                     map(int, m.groups())))
    return proc.stdout, stats, elapsed


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("bench", help="path to the specsim_bench binary")
    ap.add_argument("scenario", help="scenario to sweep (e.g. fig11)")
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="required cold/warm wall-time ratio "
                         "(0 = don't check timing)")
    ap.add_argument("--arg", action="append", default=[],
                    dest="extra_args", metavar="FLAG",
                    help="extra specsim_bench flag (repeatable)")
    args = ap.parse_args()

    failures = []
    with tempfile.TemporaryDirectory(prefix="specsim_cache_") as d:
        cold_csv, cold, t_cold = run_once(
            args.bench, args.scenario, d, args.extra_args)
        warm_csv, warm, t_warm = run_once(
            args.bench, args.scenario, d, args.extra_args)

    points = cold["misses"]
    print(f"{args.scenario}: {points} points; "
          f"cold {t_cold * 1e3:.0f} ms "
          f"(hits={cold['hits']} misses={cold['misses']} "
          f"stores={cold['stores']}), "
          f"warm {t_warm * 1e3:.0f} ms "
          f"(hits={warm['hits']} misses={warm['misses']})")

    if warm_csv != cold_csv:
        failures.append("warm CSV differs from cold CSV "
                        "(cache hits must be byte-identical)")
    if cold["hits"] != 0 or cold["stores"] != points or points == 0:
        failures.append(f"cold-run accounting is off: {cold}")
    if warm["hits"] != points or warm["misses"] != 0:
        failures.append(
            f"warm run should hit all {points} points: {warm}")
    if cold["corrupt"] or warm["corrupt"]:
        failures.append("corrupt cache entries detected")
    if args.min_speedup > 0:
        speedup = t_cold / t_warm if t_warm > 0 else float("inf")
        print(f"warm speedup: {speedup:.1f}x "
              f"(required >= {args.min_speedup:.1f}x)")
        if speedup < args.min_speedup:
            failures.append(
                f"warm run only {speedup:.1f}x faster than cold "
                f"(need >= {args.min_speedup:.1f}x)")

    if failures:
        print("\ncache smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("cache smoke passed")


if __name__ == "__main__":
    main()
