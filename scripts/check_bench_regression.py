#!/usr/bin/env python3
"""Perf-regression gate over BENCH_microbench.json.

Compares a freshly measured microbench JSON against the committed
baseline (bench/baselines/BENCH_microbench.json) and fails when a
kernel's simulation throughput regressed.

CI runners differ wildly in absolute speed, so raw cycles-per-second
cannot be compared across machines. Two machine-independent checks are
applied instead:

1. Per-kernel relative regression. The median of the per-kernel
   current/baseline ratios estimates the machine-speed factor between
   the two measurements; a kernel whose own ratio falls more than
   --tolerance below that factor got slower *relative to the rest of
   the suite* — a real per-kernel regression, not a slow runner.

2. Raw-engine speedup regression. For every "<kernel>/raw" row the
   speedup over its non-raw sibling is a pure ratio of same-machine
   numbers. It must not fall more than --tolerance below the
   baseline's speedup for the same pair: the raw engine (stall
   fast-forward + arena + stats-lite) earning less over the baseline
   engine is exactly the regression this gate exists to catch.

With --trajectory the run also appends its machine-normalized numbers
(the machine-speed factor, each kernel's ratio-over-factor, and the
raw-engine speedup pairs) to a BENCH_trajectory.json artifact. Those
normalized medians are comparable across runners, so the artifact
accumulates a perf trajectory of the repo over time that CI can upload
alongside the gate result.

Exit status: 0 = pass, 1 = regression, 2 = usage/data error.
"""

import argparse
import json
import sys


def load_doc(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_rows(path):
    doc = load_doc(path)
    rows = {}
    for row in doc.get("rows", []):
        name = row.get("bench")
        cps = row.get("sim_cycles_per_sec")
        if name is None or not cps:
            continue
        rows[name] = float(cps)
    if not rows:
        print(f"error: no usable rows in {path}", file=sys.stderr)
        sys.exit(2)
    return rows


def median(values):
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def append_trajectory(path, label, factor, ratios, speedups,
                      fleet=None):
    """Append one normalized measurement to the trajectory artifact.

    Each entry carries only machine-independent numbers: the median
    current/baseline factor, each kernel's ratio normalized by that
    factor (1.0 = moved with the suite, >1 = outpaced it), and the
    same-machine raw-engine speedups. When a fleet measurement from
    scripts/fleet_smoke.py --bench-out is supplied, its 1-daemon vs
    2-daemon cold wall times (same machine, same run — the scaling
    ratio is machine-independent) ride along in a "fleet" block. A
    corrupt or missing artifact starts a fresh one rather than
    failing the gate.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
        if not isinstance(doc.get("entries"), list):
            raise ValueError("no entries list")
    except (OSError, ValueError):
        doc = {"schema": "specsim-bench-trajectory-v1", "entries": []}
    entry = {
        "label": label,
        "machine_factor": round(factor, 6),
        "normalized": {k: round(r / factor, 6)
                       for k, r in sorted(ratios.items())},
        "raw_speedups": {k: round(v, 6)
                         for k, v in sorted(speedups.items())},
    }
    if fleet is not None:
        entry["fleet"] = fleet
    doc["entries"].append(entry)
    try:
        with open(path, "w") as f:
            json.dump(doc, f, indent=1)
            f.write("\n")
    except OSError as e:
        print(f"warning: cannot write trajectory {path}: {e}",
              file=sys.stderr)
        return
    print(f"trajectory: appended entry '{label}' to {path} "
          f"({len(doc['entries'])} total)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="freshly measured BENCH json")
    ap.add_argument("baseline", help="committed baseline BENCH json")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional regression (default 0.20)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="warn (instead of error) when a measured kernel "
                         "has no baseline row")
    ap.add_argument("--trajectory", metavar="PATH",
                    help="append the normalized medians of this run to "
                         "the given BENCH_trajectory.json artifact")
    ap.add_argument("--label", default="local",
                    help="label for the trajectory entry (e.g. a commit "
                         "sha; default: local)")
    ap.add_argument("--fleet-bench", metavar="PATH",
                    help="fleet timing JSON from scripts/fleet_smoke.py "
                         "--bench-out, embedded in the trajectory entry")
    args = ap.parse_args()

    # A cache-warm measurement (specsim_bench --cache-dir replayed
    # memoized points instead of simulating) carries no timing signal:
    # annotate and skip the gate rather than comparing replay overhead
    # against real simulation throughput. (The microbench scenario is
    # marked non-cacheable, so this only fires if the pipeline wiring
    # changes — the annotation makes that visible instead of letting a
    # meaningless comparison pass or fail CI.)
    cache = load_doc(args.current).get("cache", {})
    if cache.get("hits", 0) > 0:
        print(f"note: current measurement is cache-warm "
              f"({cache['hits']} hit(s), {cache.get('misses', 0)} "
              f"miss(es)) — timings are replays, not measurements; "
              f"skipping the perf gate")
        sys.exit(0)

    cur = load_rows(args.current)
    base = load_rows(args.baseline)

    # A kernel measured now but absent from the baseline would silently
    # escape both checks below — surface it instead of skipping it, so a
    # new kernel cannot ship ungated by accident. The fix is to refresh
    # bench/baselines/BENCH_microbench.json (or pass --allow-missing for
    # a local run against an older baseline).
    missing = sorted(set(cur) - set(base))
    if missing:
        verb = "warning" if args.allow_missing else "error"
        print(f"{verb}: kernel(s) measured but missing from baseline "
              f"{args.baseline}: {', '.join(missing)}", file=sys.stderr)
        if not args.allow_missing:
            print("  refresh the baseline to gate them, or pass "
                  "--allow-missing to proceed without", file=sys.stderr)
            sys.exit(2)

    common = sorted(set(cur) & set(base))
    if not common:
        print("error: no kernels in common between current and baseline",
              file=sys.stderr)
        sys.exit(2)

    failures = []

    # Check 1: per-kernel ratio vs the machine-speed factor.
    ratios = {k: cur[k] / base[k] for k in common}
    factor = median(ratios.values())
    floor = factor * (1.0 - args.tolerance)
    print(f"machine-speed factor (median current/baseline): {factor:.3f}")
    for k in common:
        status = "ok"
        if ratios[k] < floor:
            status = "REGRESSED"
            failures.append(
                f"{k}: {ratios[k]:.3f}x vs factor {factor:.3f} "
                f"(floor {floor:.3f})")
        print(f"  {k}: cur={cur[k]:.3g} base={base[k]:.3g} "
              f"ratio={ratios[k]:.3f} [{status}]")

    # Check 2: raw-engine speedup pairs.
    speedups = {}
    print("raw-engine speedups (kernel/raw vs kernel):")
    for k in common:
        if not k.endswith("/raw"):
            continue
        sib = k[: -len("/raw")]
        if sib not in common:
            continue
        cur_sp = cur[k] / cur[sib]
        base_sp = base[k] / base[sib]
        speedups[sib] = cur_sp
        status = "ok"
        if cur_sp < base_sp * (1.0 - args.tolerance):
            status = "REGRESSED"
            failures.append(
                f"{k}: speedup {cur_sp:.2f}x vs baseline "
                f"{base_sp:.2f}x")
        print(f"  {sib}: cur={cur_sp:.2f}x base={base_sp:.2f}x "
              f"[{status}]")

    # The trajectory records regressing runs too — a dip in the artifact
    # is exactly the signal it exists to preserve.
    if args.trajectory:
        fleet = None
        if args.fleet_bench:
            fdoc = load_doc(args.fleet_bench)
            if fdoc.get("schema") != "specsim-fleet-bench-v1":
                print(f"error: {args.fleet_bench} is not a "
                      "specsim-fleet-bench-v1 document", file=sys.stderr)
                sys.exit(2)
            fleet = {k: fdoc[k] for k in
                     ("scenario", "workers_per_daemon", "cores",
                      "one_daemon_s", "two_daemon_s", "scaling")
                     if k in fdoc}
            print(f"fleet: {fleet.get('scaling', '?')}x 2-daemon "
                  f"scaling on {fleet.get('cores', '?')} core(s) "
                  f"embedded in trajectory entry")
        append_trajectory(args.trajectory, args.label, factor, ratios,
                          speedups, fleet)

    if failures:
        print("\nperf regression detected:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("\nno perf regression (tolerance "
          f"{args.tolerance:.0%})")


if __name__ == "__main__":
    main()
